"""Fault-tolerant, memory-bounded shard scheduling for the kernel.

:mod:`repro.core.kernel.parallel` used to fan every chunk out at once
through a bare ``pool.imap`` — one dead worker hung the parent forever,
and nothing bounded the aggregate memory of the in-flight candidate
suffixes.  This module replaces that with a supervised work-queue
scheduler in the batching discipline of GMM_SublinearMPC's notes
(partition candidates into batches whose total volume fits a budget,
process batch-at-a-time, merge incrementally):

* **Shards.**  The unit index space of a chunk kind (top-level
  right-closed-prefix for ``node-max``/``exists``, closed-set index for
  ``edge-pair``) is partitioned into contiguous :class:`Shard` ranges.
  Each shard carries a cheap size estimate — candidate-suffix volume
  for the DFS kinds, slice width for the pairing loop — and shards are
  admitted batch-at-a-time so the total in-flight estimate never
  exceeds the configured memory budget (``mp.mem_admitted_peak``
  records the high-water mark per operator span).
* **Supervision.**  Workers are plain ``multiprocessing`` processes fed
  one shard at a time over per-worker queues.  The parent polls a
  shared result queue with a heartbeat instead of blocking: a worker
  that died (OOM-kill, segfault, signal) or blew its shard deadline is
  detected, killed if still wedged, and respawned.
* **Degradation ladder** (the shape of PR 1's
  :mod:`repro.robustness.degradation`, weakest medicine first): the
  failed shard is retried with capped exponential backoff and jitter up
  to ``max_retries``; an exhausted shard is split in half (halving its
  memory estimate — the medicine for a real OOM); an unsplittable shard
  falls back to the in-parent serial twin; only when serial also fails
  does :class:`~repro.robustness.errors.RetryExhausted` propagate.  A
  typed :class:`~repro.robustness.errors.ReproError` raised *inside* a
  worker is deterministic engine failure, not infrastructure fault — it
  is re-raised immediately, never retried.
* **Spill/resume.**  With a spill directory configured, each finished
  shard is persisted as a sealed JSON checkpoint (the atomic,
  SHA-256-sealed primitives of :mod:`repro.core.io` via
  :class:`~repro.robustness.checkpointing.CheckpointStore`) under a key
  derived from the normalized payload, so an interrupted run resumes
  from its finished shards and still merges to byte-identical output.
* **Determinism.**  Results merge in unit-index order no matter how
  shards were retried, split, spilled, or resumed, so the concatenated
  output equals the serial run exactly — the invariant every
  differential test of this package relies on.

Every recovery action is observable: schema-declared counters
(``mp.retries``, ``mp.worker_deaths``, ``mp.shard_splits``,
``mp.spilled_bytes``, ``mp.spill_loads``, ``mp.mem_admitted_peak``)
plus ``shard.*`` trace events, and each executed attempt records a
``kernel.shard`` span (grafted from the worker, or opened in-parent for
the serial twin).  Abandoned attempts ship nothing — a superseded
result arriving late is dropped before it can double-count.

Budget knobs thread through :func:`repro.robustness.budget.governed`
(``max_shard_bytes``, ``max_shard_retries``); everything else — the
deadline, backoff shape, spill directory, and the fault-injection
``worker_probe`` — rides on a :class:`ShardPolicy` installed ambiently
with :func:`scheduling` or passed to the pool explicitly.
"""

from __future__ import annotations

import heapq
import math
import os
import pickle
import queue as _queue_module
import random
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any

import multiprocessing
import multiprocessing.process
import multiprocessing.queues

from repro.core.io import payload_digest
from repro.core.kernel.engine import (
    edge_pairing_chunk,
    search_existential_chunk,
    search_maximization_chunk,
)
from repro.observability import trace as _trace
from repro.robustness import budget as _budget
from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import EngineMisuse, ReproError, RetryExhausted

#: Nominal bytes charged per unit of work in the cheap size estimates.
UNIT_BYTES = 128

#: Retry cap applied when neither the policy nor the budget sets one.
DEFAULT_MAX_RETRIES = 2

#: Shards per worker targeted when no memory budget constrains sizing.
SHARDS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPolicy:
    """Knobs of the shard scheduler (all optional; defaults are sane).

    Attributes:
        max_retries: per-shard retry cap before the degradation ladder
            (``None`` defers to the ambient budget's
            ``max_shard_retries``, then :data:`DEFAULT_MAX_RETRIES`).
        max_inflight_bytes: aggregate admission budget over the size
            estimates of in-flight shards (``None`` defers to the
            ambient budget's ``max_shard_bytes``, then unbounded).
        shard_timeout_seconds: supervising deadline per attempt; a
            worker past it is presumed wedged, killed, and the shard
            retried.  ``None`` disables the deadline (death detection
            still works).
        backoff_base_seconds / backoff_cap_seconds / backoff_jitter:
            capped exponential backoff between retries of one shard,
            with a multiplicative jitter fraction drawn from a
            ``seed``-ed RNG (deterministic per scheduler).
        seed: seed of the jitter RNG.
        poll_interval_seconds: parent heartbeat — how long one result
            poll blocks before liveness/deadline sweeps run.
        spill_dir: directory for the sealed per-shard partial store;
            ``None`` disables spilling.
        worker_probe: picklable callable invoked in the *worker* with a
            context dict (``seq``, ``attempt``, ``kind``, ``lo``,
            ``hi``, ``estimate``) before each attempt — the process
            -level fault-injection surface (see ``tests/faults.py``).
    """

    max_retries: int | None = None
    max_inflight_bytes: int | None = None
    shard_timeout_seconds: float | None = 120.0
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0
    poll_interval_seconds: float = 0.02
    spill_dir: str | os.PathLike[str] | None = None
    worker_probe: Callable[[dict[str, Any]], None] | None = None


_ACTIVE_POLICY: ContextVar[ShardPolicy | None] = ContextVar(
    "repro_active_shard_policy", default=None
)


def active_policy() -> ShardPolicy | None:
    """The ambient policy installed by :func:`scheduling`, if any."""
    return _ACTIVE_POLICY.get()


@contextmanager
def scheduling(policy: ShardPolicy | None) -> Iterator[ShardPolicy | None]:
    """Install ``policy`` as the ambient shard policy for the block.

    Mirrors :func:`repro.robustness.budget.governed`:
    ``scheduling(None)`` is a no-op pass-through, nesting restores the
    previous policy on exit.  :class:`~repro.core.kernel.parallel.KernelPool`
    picks the ambient policy up when none is passed explicitly.
    """
    if policy is None:
        yield None
        return
    token = _ACTIVE_POLICY.set(policy)
    try:
        yield policy
    finally:
        _ACTIVE_POLICY.reset(token)


# ---------------------------------------------------------------------------
# Shards and their size estimates
# ---------------------------------------------------------------------------

@dataclass
class Shard:
    """A contiguous range ``[lo, hi)`` of unit indices of one chunk kind."""

    lo: int
    hi: int
    estimate: int
    attempts: int = 0

    @property
    def width(self) -> int:
        return self.hi - self.lo


def unit_estimates(
    kind: str, count: int, unit_bytes: int = UNIT_BYTES
) -> list[int]:
    """Cheap per-unit size estimates, in nominal bytes.

    ``node-max`` / ``exists`` unit ``i`` explores the DFS subtree whose
    first choice is candidate ``i``, which touches only candidates
    ``>= i`` — its estimate is the candidate-suffix volume
    ``(count - i) * unit_bytes``.  ``edge-pair`` units are independent
    closed sets, one flat charge each (slice width).  Callers that know
    the payload pass a payload-aware ``unit_bytes`` from
    :func:`payload_unit_bytes`; the default is the flat nominal charge.
    """
    if kind in ("node-max", "exists"):
        return [(count - index) * unit_bytes for index in range(count)]
    if kind == "edge-pair":
        return [unit_bytes] * count
    raise EngineMisuse(f"unknown chunk kind: {kind}")


def payload_unit_bytes(kind: str, payload: tuple[Any, ...]) -> int:
    """A payload-aware per-unit charge, never below :data:`UNIT_BYTES`.

    The DFS kinds carry a closure machine whose per-frontier state (an
    int bitmask over machine elements, memoized per candidate) scales
    with the element count, so each unit is charged an extra byte per
    eight machine elements on top of the flat nominal charge.
    ``edge-pair`` frontier state is a single mask; it keeps the flat
    charge.
    """
    if kind in ("node-max", "exists"):
        trans = payload[2] if kind == "node-max" else payload[1]
        elements = len(trans[0]) if trans else 0
        return UNIT_BYTES + elements // 8
    if kind == "edge-pair":
        return UNIT_BYTES
    raise EngineMisuse(f"unknown chunk kind: {kind}")


def plan_shards(
    estimates: list[int], lo: int, hi: int, target: int
) -> list[Shard]:
    """Greedily partition ``[lo, hi)`` into shards of ``<= target`` bytes.

    A single unit larger than ``target`` gets a shard of its own — the
    partition can never go below one unit.
    """
    shards: list[Shard] = []
    start = lo
    volume = 0
    for index in range(lo, hi):
        unit = estimates[index]
        if index > start and volume + unit > target:
            shards.append(Shard(lo=start, hi=index, estimate=volume))
            start = index
            volume = 0
        volume += unit
    if start < hi:
        shards.append(Shard(lo=start, hi=hi, estimate=volume))
    return shards


def shard_estimate(estimates: list[int], lo: int, hi: int) -> int:
    """The planned size estimate of the range ``[lo, hi)``."""
    return sum(estimates[lo:hi])


# ---------------------------------------------------------------------------
# The work itself (runs in workers and in the parent serial twin)
# ---------------------------------------------------------------------------

def run_shard_serial(
    kind: str, payload: tuple[Any, ...], lo: int, hi: int
) -> list[Any]:
    """Execute one shard in-process: the serial twin of a worker attempt.

    The concatenation over a partition of ``[0, count)`` in index order
    is exactly the serial chunk loop's output — the determinism
    contract retries, splits, and resume all lean on.
    """
    if kind == "node-max":
        candidates, member_labels, trans, arity = payload
        results: list[Any] = []
        for index in range(lo, hi):
            results.extend(
                search_maximization_chunk(
                    candidates, member_labels, trans, arity, index
                )
            )
        return results
    if kind == "exists":
        member_labels, trans, arity = payload
        results = []
        for index in range(lo, hi):
            results.extend(
                search_existential_chunk(member_labels, trans, arity, index)
            )
        return results
    if kind == "edge-pair":
        compat, closed_sets = payload
        return list(edge_pairing_chunk(compat, closed_sets, lo, hi))
    raise EngineMisuse(f"unknown chunk kind: {kind}")


def _ship_error(error: BaseException) -> tuple[bytes | None, str, str]:
    """A picklable description of a worker-side failure."""
    try:
        blob: bytes | None = pickle.dumps(error)
    except Exception:
        blob = None
    return (blob, type(error).__name__, repr(error))


def _revive_error(body: tuple[bytes | None, str, str]) -> BaseException:
    """Reconstruct a shipped worker failure (best effort)."""
    blob, type_name, rendered = body
    if blob is not None:
        try:
            revived = pickle.loads(blob)
            if isinstance(revived, BaseException):
                return revived
        except Exception:
            pass
    if type_name == "MemoryError":
        return MemoryError(rendered)
    return RuntimeError(f"{type_name}: {rendered}")


def shard_worker(
    tasks: multiprocessing.queues.Queue,  # type: ignore[type-arg]
    results: multiprocessing.queues.Queue,  # type: ignore[type-arg]
) -> None:
    """The worker loop: one shard per task, results shipped back.

    Task: ``(seq, attempt, kind, payload, lo, hi, estimate, traced,
    probe)``; a ``None`` task is the clean-shutdown sentinel.  Result:
    ``(seq, "ok", shard_results, trace_records_or_None)`` or
    ``(seq, "error", shipped_error, None)``.  The probe fires *before*
    tracing starts, so a killed or failed attempt ships no records —
    only winning attempts can ever be grafted (no duplicate spans, no
    double counting).
    """
    while True:
        try:
            task = tasks.get()
        except (EOFError, OSError):
            return
        if task is None:
            return
        seq, attempt, kind, payload, lo, hi, estimate, traced, probe = task
        try:
            if probe is not None:
                probe(
                    {
                        "seq": seq,
                        "attempt": attempt,
                        "kind": kind,
                        "lo": lo,
                        "hi": hi,
                        "estimate": estimate,
                    }
                )
            if traced:
                tracer = _trace.Tracer()
                with _trace.tracing(tracer):
                    with _trace.span(
                        "kernel.shard",
                        kind=kind,
                        lo=lo,
                        hi=hi,
                        attempt=attempt,
                    ):
                        with _trace.span(
                            "kernel.chunk", kind=kind, first_index=lo
                        ) as chunk_span:
                            shard_results = run_shard_serial(
                                kind, payload, lo, hi
                            )
                            chunk_span.add(
                                "mp.chunk_results", len(shard_results)
                            )
                records: list[dict[str, Any]] | None = tracer.records
            else:
                shard_results = run_shard_serial(kind, payload, lo, hi)
                records = None
            results.put((seq, "ok", shard_results, records))
        except BaseException as error:  # ship it; the parent classifies
            try:
                results.put((seq, "error", _ship_error(error), None))
            except (EOFError, OSError):
                return


# ---------------------------------------------------------------------------
# Spill store: sealed per-shard partial results
# ---------------------------------------------------------------------------

def _normalize_payload(value: Any) -> Any:
    """JSON-safe canonical form of a chunk payload, for run keys."""
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, (tuple, list)):
        return [_normalize_payload(item) for item in value]
    return value


def spill_run_key(kind: str, payload: tuple[Any, ...], count: int) -> str:
    """A stable digest identifying one chunked computation.

    Two runs over the same (kind, payload, unit count) share the key —
    and only those — so resumed shards can never be merged into a
    different computation.
    """
    return payload_digest([kind, count, _normalize_payload(payload)])[:20]


class ShardSpillStore:
    """Sealed on-disk partial results, one checkpoint file per shard.

    Reuses :class:`~repro.robustness.checkpointing.CheckpointStore`:
    every file is atomically written and SHA-256 sealed, so a kill
    mid-spill never leaves a torn shard and bit rot is detected (a
    corrupt shard is discarded and recomputed, never trusted).
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.store = CheckpointStore(directory)

    @staticmethod
    def _stage(run_key: str, lo: int, hi: int) -> str:
        return f"shard-{run_key}-{lo:06d}-{hi:06d}"

    def save(
        self, run_key: str, kind: str, lo: int, hi: int, results: list[Any]
    ) -> int:
        """Persist one finished shard; returns the bytes written."""
        payload = {
            "kind": kind,
            "lo": lo,
            "hi": hi,
            "results": [list(item) for item in results],
        }
        return self.store.save(self._stage(run_key, lo, hi), payload)

    def load_finished(
        self, run_key: str, kind: str, count: int
    ) -> dict[tuple[int, int], list[Any]]:
        """All valid finished shards of ``run_key``, keyed by range.

        Overlapping or out-of-range shards (possible only under manual
        tampering) are skipped; corrupt files are deleted by the
        sealed-digest check.  Results come back exactly as the workers
        produced them (tuples restored).
        """
        prefix = f"shard-{run_key}-"
        loaded: dict[tuple[int, int], list[Any]] = {}
        covered: set[int] = set()
        for stage in self.store.stages():
            if not stage.startswith(prefix):
                continue
            payload, _corruption = self.store.load_or_discard(stage)
            if not isinstance(payload, dict):
                continue
            lo, hi = payload.get("lo"), payload.get("hi")
            if (
                payload.get("kind") != kind
                or not isinstance(lo, int)
                or not isinstance(hi, int)
                or not 0 <= lo < hi <= count
                or any(unit in covered for unit in range(lo, hi))
                or not isinstance(payload.get("results"), list)
            ):
                continue
            loaded[(lo, hi)] = [tuple(item) for item in payload["results"]]
            covered.update(range(lo, hi))
        return loaded


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    """One supervised worker slot."""

    process: multiprocessing.process.BaseProcess
    tasks: multiprocessing.queues.Queue  # type: ignore[type-arg]
    busy_seq: int | None = None


@dataclass
class _Flight:
    """One in-flight shard attempt."""

    shard: Shard
    worker_index: int
    deadline: float


class ShardScheduler:
    """Supervised, retryable, memory-accounted shard execution.

    One scheduler owns ``workers`` processes for its lifetime (a whole
    ``speedup`` call when driven through
    :class:`~repro.core.kernel.parallel.KernelPool`) and runs one
    chunked computation at a time through :meth:`run`.
    """

    def __init__(self, workers: int, policy: ShardPolicy | None = None) -> None:
        self.workers = workers
        self.policy = policy if policy is not None else ShardPolicy()
        self._context = multiprocessing.get_context()
        self._slots: list[_Worker | None] = []
        self._results: multiprocessing.queues.Queue | None = None  # type: ignore[type-arg]
        self._started = False
        self._seq = 0
        self._rng = random.Random(self.policy.seed)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> bool:
        """Spawn the result queue and worker processes.

        Returns ``False`` (after cleaning up) when the platform refuses
        process or queue creation — the caller then falls back to the
        serial loop.  Idempotent once started.
        """
        if self._started:
            return True
        try:
            self._results = self._context.Queue()
            for _ in range(self.workers):
                self._slots.append(self._spawn())
        except (OSError, ValueError):
            self.terminate()
            return False
        self._started = True
        return True

    def _spawn(self) -> _Worker:
        tasks: multiprocessing.queues.Queue = self._context.Queue()  # type: ignore[type-arg]
        process = self._context.Process(
            target=shard_worker, args=(tasks, self._results), daemon=True
        )
        process.start()
        return _Worker(process=process, tasks=tasks)

    def _respawn(self, index: int) -> bool:
        """Replace the worker in ``index`` (its process is dead or wedged)."""
        old = self._slots[index]
        if old is not None:
            if old.process.is_alive():
                old.process.kill()
            old.process.join(timeout=2.0)
            old.tasks.close()
            old.tasks.cancel_join_thread()
        try:
            self._slots[index] = self._spawn()
        except (OSError, ValueError):
            self._slots[index] = None
            return False
        return True

    def close(self) -> None:
        """Clean shutdown: sentinel every worker, join, then reap."""
        for slot in self._slots:
            if slot is None:
                continue
            try:
                slot.tasks.put(None)
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            if slot is None:
                continue
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=2.0)
            slot.tasks.close()
            slot.tasks.cancel_join_thread()
        self._drop_result_queue()
        self._slots = []
        self._started = False

    def terminate(self) -> None:
        """Hard shutdown for the error path: kill everything now."""
        for slot in self._slots:
            if slot is None:
                continue
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join(timeout=2.0)
            slot.tasks.close()
            slot.tasks.cancel_join_thread()
        self._drop_result_queue()
        self._slots = []
        self._started = False

    def _drop_result_queue(self) -> None:
        if self._results is not None:
            self._results.close()
            self._results.cancel_join_thread()
            self._results = None

    def __enter__(self) -> "ShardScheduler":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
        return False

    # -- policy resolution -----------------------------------------------

    def _resolved_retries(self) -> int:
        if self.policy.max_retries is not None:
            return self.policy.max_retries
        budget = _budget.current_budget()
        if budget is not None and budget.max_shard_retries is not None:
            return budget.max_shard_retries
        return DEFAULT_MAX_RETRIES

    def _resolved_inflight_cap(self) -> int | None:
        if self.policy.max_inflight_bytes is not None:
            return self.policy.max_inflight_bytes
        budget = _budget.current_budget()
        if budget is not None:
            return budget.max_shard_bytes
        return None

    def _backoff_delay(self, attempts: int) -> float:
        base = self.policy.backoff_base_seconds * (2 ** max(attempts - 1, 0))
        capped = min(base, self.policy.backoff_cap_seconds)
        return capped * (1.0 + self.policy.backoff_jitter * self._rng.random())

    # -- the run ---------------------------------------------------------

    def run(
        self, kind: str, payload: tuple[Any, ...], count: int, *, phase: str
    ) -> list[list[Any]]:
        """Execute ``count`` units of ``kind`` and merge in index order.

        Returns one result list per contiguous range, ordered by range
        start — flattening reproduces the serial loop byte-for-byte.
        Raises the worker's own typed error for deterministic engine
        failures, and :class:`RetryExhausted` when a shard outlives the
        whole degradation ladder.
        """
        if not self._started:
            raise EngineMisuse("ShardScheduler.run before start()")
        state = _RunState(
            kind=kind,
            payload=payload,
            count=count,
            phase=phase,
            traced=_trace.tracing_enabled(),
            estimates=unit_estimates(
                kind, count, payload_unit_bytes(kind, payload)
            ),
            max_retries=self._resolved_retries(),
            inflight_cap=self._resolved_inflight_cap(),
        )
        # One span per chunked computation.  Every mp.* counter and
        # shard.* event of this run lands here, so the span's
        # mp.mem_admitted_peak total IS this run's high-water mark —
        # an operator span hosting several runs (node-max + exists)
        # would otherwise sum their peaks.
        with _trace.span("kernel.map", kind=kind, phase=phase, units=count):
            self._load_spill(state)
            self._plan(state)
            poll = self.policy.poll_interval_seconds
            while state.heap or state.inflight or state.serial_pending:
                while state.serial_pending:
                    self._run_serial(state, state.serial_pending.pop())
                self._assign(state)
                if state.inflight:
                    self._drain(state, timeout=poll)
                    self._sweep(state)
                elif state.heap:
                    if state.broken:
                        while state.heap:
                            state.serial_pending.append(
                                heapq.heappop(state.heap)[2]
                            )
                        continue
                    wait = max(0.0, state.heap[0][0] - time.monotonic())  # reprolint: disable=RL002 -- supervision clock, not output
                    time.sleep(min(wait, 0.05))
        ranges = sorted(state.done)
        units = sum(hi - lo for lo, hi in ranges)
        if units != count:
            raise EngineMisuse(
                "shard ranges do not tile the unit space",
                kind=kind,
                count=count,
                covered=units,
            )
        return [state.done[key] for key in ranges]

    # -- planning and resume ---------------------------------------------

    def _load_spill(self, state: "_RunState") -> None:
        if self.policy.spill_dir is None:
            return
        state.spill = ShardSpillStore(self.policy.spill_dir)
        state.run_key = spill_run_key(state.kind, state.payload, state.count)
        loaded = state.spill.load_finished(
            state.run_key, state.kind, state.count
        )
        for (lo, hi), results in sorted(loaded.items()):
            state.done[(lo, hi)] = results
            state.produced += len(results)
            _trace.add("mp.spill_loads")
            _trace.add("mp.chunks", hi - lo)
            _trace.add("mp.chunk_results", len(results))
            _trace.event(
                "shard.spill_load",
                kind=state.kind,
                lo=lo,
                hi=hi,
                results=len(results),
            )

    def _plan(self, state: "_RunState") -> None:
        covered: set[int] = set()
        for lo, hi in state.done:
            covered.update(range(lo, hi))
        remaining = sum(
            state.estimates[index]
            for index in range(state.count)
            if index not in covered
        )
        if state.inflight_cap is not None:
            target = max(1, state.inflight_cap // max(self.workers, 1))
        else:
            target = max(
                1, -(-remaining // (max(self.workers, 1) * SHARDS_PER_WORKER))
            )
        start: int | None = None
        # analysis: unbounded-ok(one pass over the chunk index space of a single dispatch)
        for index in range(state.count + 1):
            gap = index < state.count and index not in covered
            if gap and start is None:
                start = index
            elif not gap and start is not None:
                for shard in plan_shards(state.estimates, start, index, target):
                    state.push(shard, release=0.0)
                start = None

    # -- dispatch --------------------------------------------------------

    def _assign(self, state: "_RunState") -> None:
        now = time.monotonic()  # reprolint: disable=RL002 -- supervision clock, not output
        # analysis: unbounded-ok(dispatches or breaks on every planned shard, bounded by the heap)
        while state.heap and state.heap[0][0] <= now:
            shard = state.heap[0][2]
            if (
                state.inflight
                and state.inflight_cap is not None
                and state.inflight_bytes + shard.estimate > state.inflight_cap
            ):
                break
            index = self._idle_worker(state)
            if index is None:
                if state.broken:
                    heapq.heappop(state.heap)
                    state.serial_pending.append(shard)
                    continue
                break
            heapq.heappop(state.heap)
            if (
                state.inflight_cap is not None
                and shard.estimate > state.inflight_cap
            ):
                _trace.event(
                    "shard.oversized",
                    kind=state.kind,
                    lo=shard.lo,
                    hi=shard.hi,
                    estimate=shard.estimate,
                    budget=state.inflight_cap,
                )
            self._dispatch(state, shard, index)
            now = time.monotonic()  # reprolint: disable=RL002 -- supervision clock, not output

    def _idle_worker(self, state: "_RunState") -> int | None:
        for index, slot in enumerate(self._slots):
            if slot is None or slot.busy_seq is not None:
                continue
            if not slot.process.is_alive():
                # Died while idle; replace quietly (no shard was lost).
                if not self._respawn(index):
                    continue
                slot = self._slots[index]
                if slot is None:
                    continue
            return index
        if all(slot is None for slot in self._slots):
            state.broken = True
        return None

    def _dispatch(self, state: "_RunState", shard: Shard, index: int) -> None:
        slot = self._slots[index]
        if slot is None:
            state.serial_pending.append(shard)
            return
        seq = self._seq
        self._seq += 1
        timeout = self.policy.shard_timeout_seconds
        deadline = (
            math.inf if timeout is None else time.monotonic() + timeout  # reprolint: disable=RL002 -- supervision clock, not output
        )
        task = (
            seq,
            shard.attempts,
            state.kind,
            state.payload,
            shard.lo,
            shard.hi,
            shard.estimate,
            state.traced,
            self.policy.worker_probe,
        )
        try:
            slot.tasks.put(task)
        except (OSError, ValueError):
            self._slots[index] = None
            state.serial_pending.append(shard)
            return
        slot.busy_seq = seq
        state.inflight[seq] = _Flight(
            shard=shard, worker_index=index, deadline=deadline
        )
        state.note_admitted(shard.estimate)

    # -- the event loop --------------------------------------------------

    def _drain(self, state: "_RunState", timeout: float) -> None:
        assert self._results is not None
        try:
            message = self._results.get(timeout=timeout)
        except _queue_module.Empty:
            return
        except (EOFError, OSError):
            return
        self._process_message(state, message)
        while True:
            try:
                message = self._results.get_nowait()
            except _queue_module.Empty:
                return
            except (EOFError, OSError):
                return
            self._process_message(state, message)

    def _process_message(
        self, state: "_RunState", message: tuple[Any, ...]
    ) -> None:
        seq, status, body, records = message
        flight = state.inflight.pop(seq, None)
        if flight is None:
            # A superseded attempt finishing late: drop it whole — no
            # counters, no graft, no results (satellite of the retry
            # determinism contract).
            _trace.event("shard.superseded", seq=seq)
            return
        slot = self._slots[flight.worker_index]
        if slot is not None and slot.busy_seq == seq:
            slot.busy_seq = None
        state.note_admitted(-flight.shard.estimate)
        if status == "ok":
            self._accept(state, flight.shard, body, records)
            return
        error = _revive_error(body)
        if isinstance(error, ReproError):
            # Deterministic engine failure — the serial run would raise
            # it too.  Propagate; never retry.
            raise error
        if isinstance(error, MemoryError):
            _trace.event(
                "shard.memory_fault",
                kind=state.kind,
                lo=flight.shard.lo,
                hi=flight.shard.hi,
                estimate=flight.shard.estimate,
            )
            self._degrade(state, flight.shard)
            return
        self._retry(state, flight.shard, reason=f"worker error: {error!r}")

    def _sweep(self, state: "_RunState") -> None:
        now = time.monotonic()  # reprolint: disable=RL002 -- supervision clock, not output
        for seq, flight in list(state.inflight.items()):
            slot = self._slots[flight.worker_index]
            dead = slot is None or not slot.process.is_alive()
            wedged = not dead and now > flight.deadline
            if not dead and not wedged:
                continue
            del state.inflight[seq]
            state.note_admitted(-flight.shard.estimate)
            _trace.add("mp.worker_deaths")
            _trace.event(
                "shard.worker_death",
                kind=state.kind,
                lo=flight.shard.lo,
                hi=flight.shard.hi,
                attempt=flight.shard.attempts,
                wedged=wedged,
            )
            self._respawn(flight.worker_index)
            self._retry(
                state,
                flight.shard,
                reason="worker wedged past deadline" if wedged else "worker died",
            )

    # -- recovery ladder -------------------------------------------------

    def _retry(self, state: "_RunState", shard: Shard, *, reason: str) -> None:
        shard.attempts += 1
        if shard.attempts <= state.max_retries:
            delay = self._backoff_delay(shard.attempts)
            _trace.add("mp.retries")
            _trace.event(
                "shard.retry",
                kind=state.kind,
                lo=shard.lo,
                hi=shard.hi,
                attempt=shard.attempts,
                delay_s=round(delay, 4),
                reason=reason,
            )
            state.push(shard, release=time.monotonic() + delay)  # reprolint: disable=RL002 -- supervision clock, not output
            return
        self._degrade(state, shard)

    def _degrade(self, state: "_RunState", shard: Shard) -> None:
        if shard.width > 1:
            mid = (shard.lo + shard.hi) // 2
            _trace.add("mp.shard_splits")
            _trace.event(
                "shard.split",
                kind=state.kind,
                lo=shard.lo,
                hi=shard.hi,
                mid=mid,
            )
            for lo, hi in ((shard.lo, mid), (mid, shard.hi)):
                state.push(
                    Shard(
                        lo=lo,
                        hi=hi,
                        estimate=shard_estimate(state.estimates, lo, hi),
                    ),
                    release=0.0,
                )
            return
        _trace.event(
            "shard.serial_fallback",
            kind=state.kind,
            lo=shard.lo,
            hi=shard.hi,
            attempts=shard.attempts,
        )
        state.serial_pending.append(shard)

    def _run_serial(self, state: "_RunState", shard: Shard) -> None:
        """The in-parent serial twin — last rung of the ladder."""
        try:
            with _trace.span(
                "kernel.shard",
                kind=state.kind,
                lo=shard.lo,
                hi=shard.hi,
                attempt=shard.attempts,
                mode="serial",
            ):
                results = run_shard_serial(
                    state.kind, state.payload, shard.lo, shard.hi
                )
        except ReproError:
            raise
        except Exception as error:
            raise RetryExhausted(
                "shard failed after retries, splits, and serial fallback",
                kind=state.kind,
                lo=shard.lo,
                hi=shard.hi,
                attempts=shard.attempts,
            ) from error
        self._accept(state, shard, results, None)

    # -- acceptance ------------------------------------------------------

    def _accept(
        self,
        state: "_RunState",
        shard: Shard,
        results: list[Any],
        records: list[dict[str, Any]] | None,
    ) -> None:
        _budget.check_configurations(
            state.produced,
            phase=state.phase,
            chunk=shard.lo,
            parallel_workers=self.workers,
        )
        _trace.add("mp.shards")
        _trace.add("mp.chunks", shard.width)
        _trace.add("mp.chunk_results", len(results))
        if records is not None:
            tracer = _trace.active_tracer()
            if tracer is not None:
                tracer.graft(records)
        state.done[(shard.lo, shard.hi)] = results
        state.produced += len(results)
        if state.spill is not None and state.run_key is not None:
            spilled = state.spill.save(
                state.run_key, state.kind, shard.lo, shard.hi, results
            )
            _trace.add("mp.spilled_bytes", spilled)
            _trace.event(
                "shard.spill",
                kind=state.kind,
                lo=shard.lo,
                hi=shard.hi,
                bytes=spilled,
            )


@dataclass
class _RunState:
    """The mutable state of one :meth:`ShardScheduler.run`."""

    kind: str
    payload: tuple[Any, ...]
    count: int
    phase: str
    traced: bool
    estimates: list[int]
    max_retries: int
    inflight_cap: int | None

    def __post_init__(self) -> None:
        self.heap: list[tuple[float, int, Shard]] = []
        self.inflight: dict[int, _Flight] = {}
        self.serial_pending: list[Shard] = []
        self.done: dict[tuple[int, int], list[Any]] = {}
        self.produced = 0
        self.inflight_bytes = 0
        self.peak_bytes = 0
        self.broken = False
        self.spill: ShardSpillStore | None = None
        self.run_key: str | None = None
        self._order = 0

    def push(self, shard: Shard, *, release: float) -> None:
        heapq.heappush(self.heap, (release, self._order, shard))
        self._order += 1

    def note_admitted(self, delta: int) -> None:
        """Track in-flight estimate bytes; the peak lands in the trace.

        ``mp.mem_admitted_peak`` is emitted as monotone *increments to
        the running maximum*, so its per-span total equals the span's
        admitted high-water mark (counters must never decrease).
        """
        self.inflight_bytes += delta
        if delta > 0 and self.inflight_bytes > self.peak_bytes:
            _trace.add(
                "mp.mem_admitted_peak", self.inflight_bytes - self.peak_bytes
            )
            self.peak_bytes = self.inflight_bytes


def policy_with(policy: ShardPolicy | None, **overrides: Any) -> ShardPolicy:
    """A copy of ``policy`` (or the defaults) with fields replaced."""
    return replace(policy if policy is not None else ShardPolicy(), **overrides)


__all__ = [
    "UNIT_BYTES",
    "DEFAULT_MAX_RETRIES",
    "ShardPolicy",
    "scheduling",
    "active_policy",
    "Shard",
    "unit_estimates",
    "payload_unit_bytes",
    "plan_shards",
    "shard_estimate",
    "run_shard_serial",
    "shard_worker",
    "ShardSpillStore",
    "spill_run_key",
    "ShardScheduler",
    "policy_with",
]
