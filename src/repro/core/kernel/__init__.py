"""Fast-path round-elimination kernel: interned labels, bitset
constraints, memoized lattices, and an opt-in parallel maximization DFS.

The reference engine (:mod:`repro.core.round_elimination` and friends)
stays the semantic source of truth; this package is its performance
twin, pinned to it by the differential oracle in ``tests/oracle.py``.
Select it through the ``use_kernel=True`` flag on the public entry
points (``R``, ``Rbar``, ``speedup``, the zero-round tests, the
relaxation helpers, ``run_chain``) or call the ``*_kernel`` functions
directly.
"""

from repro.core.kernel.bitops import (
    bit,
    is_strict_subset,
    is_subset,
    iter_bits,
    mask_from_ids,
    popcount,
    universe,
)
from repro.core.kernel.engine import (
    KernelProblem,
    all_relax_into_kernel,
    existential_constraint_kernel,
    find_label_relabeling_kernel,
    kernel_R,
    kernel_Rbar,
    maximize_edge_constraint_kernel,
    maximize_node_constraint_kernel,
    zero_round_solvable_pn_kernel,
    zero_round_solvable_symmetric_kernel,
)
from repro.core.kernel.interning import LabelInterner

__all__ = [
    "KernelProblem",
    "LabelInterner",
    "kernel_R",
    "kernel_Rbar",
    "maximize_edge_constraint_kernel",
    "maximize_node_constraint_kernel",
    "existential_constraint_kernel",
    "all_relax_into_kernel",
    "find_label_relabeling_kernel",
    "zero_round_solvable_pn_kernel",
    "zero_round_solvable_symmetric_kernel",
    "bit",
    "mask_from_ids",
    "iter_bits",
    "popcount",
    "is_subset",
    "is_strict_subset",
    "universe",
]
