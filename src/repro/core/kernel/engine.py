"""The fast-path round-elimination kernel.

Semantically this module is a re-implementation of
:mod:`repro.core.round_elimination` (and the hot predicates of
:mod:`repro.core.solvability` / :mod:`repro.core.relaxation`) over an
interned representation: labels become dense integer ids, label sets
become int bitmasks, and configurations become sorted id tuples.  All
the ``frozenset`` algebra and ``render_label``-keyed sorting of the
reference engine — its profiled hot spots — turn into single int
instructions and native int-tuple sorts.

The contract is strict: every public function here returns *exactly*
the objects the reference implementation returns (the same
``frozenset`` labels, the same :class:`~repro.core.constraints.Constraint`
contents), so the two engines are interchangeable behind the
``use_kernel`` flags and the differential oracle in ``tests/oracle.py``
can assert equality, not just isomorphism.

A :class:`KernelProblem` memoizes the per-problem artifacts that the
reference engine recomputes from scratch on every call: single-label
Galois images, the closed-set lattice of the edge constraint, the node
strength relation, right-closed sets, and the prefix closure used by
the maximization DFS.  The cache lives on the ``Problem`` instance
(:meth:`KernelProblem.of`), so lemma checkers that hit the same problem
repeatedly pay for the analysis once.

Budgets: the kernel calls the same ambient-budget checkpoints
(:mod:`repro.robustness.budget`) with the same phase names as the
reference engine, so ``governed()`` wall clocks, configuration caps and
fault-injection probes keep working on the fast path.  In parallel mode
the checkpoints fire between top-level DFS chunks (workers themselves
run unbudgeted); see :mod:`repro.core.kernel.parallel`.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.kernel.bitops import (
    bit,
    is_strict_subset,
    is_subset,
    iter_bits,
    mask_from_ids,
    popcount,
)
from repro.core.kernel.interning import LabelInterner
from repro.core.labels import Alphabet, render_label
from repro.core.problem import Problem
from repro.observability import trace as _trace
from repro.robustness import budget as _budget
from repro.robustness.errors import InvalidProblem
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.kernel.parallel import KernelPool


def _set_sort_key(labels: frozenset) -> tuple:
    return (len(labels), sorted(render_label(label) for label in labels))


class KernelProblem:
    """The interned view of one :class:`~repro.core.problem.Problem`."""

    __slots__ = (
        "problem",
        "interner",
        "n",
        "delta",
        "compat",
        "node_configs",
        "node_config_set",
        "_partner_cache",
        "_closed_sets",
        "_node_ge",
        "_node_strict_successors",
        "_node_right_closed",
        "_node_prefix_closure",
    )

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        interner = LabelInterner(problem.alphabet)
        self.interner = interner
        self.n = len(interner)
        self.delta = problem.delta
        self.compat: list[int] = [
            interner.mask_of(problem.compatible_labels(label))
            for label in interner.labels
        ]
        self.node_configs: tuple[tuple[int, ...], ...] = tuple(
            sorted(
                interner.ids_of(configuration.items)
                for configuration in problem.node_constraint.configurations
            )
        )
        self.node_config_set = frozenset(self.node_configs)
        self._partner_cache: dict[int, int] = {}
        self._closed_sets: tuple[int, ...] | None = None
        self._node_ge: list[int] | None = None
        self._node_strict_successors: list[int] | None = None
        self._node_right_closed: tuple[int, ...] | None = None
        self._node_prefix_closure: frozenset[int] | None = None

    @classmethod
    def of(cls, problem: Problem) -> "KernelProblem":
        """The interned view, memoized on the problem instance."""
        cached = problem._kernel_cache
        if cached is None:
            _trace.add("kernel.cache.miss")
            cached = cls(problem)
            problem._kernel_cache = cached
        else:
            _trace.add("kernel.cache.hit")
        return cached

    # -- Galois connection of the edge constraint ------------------------

    def partner(self, mask: int) -> int:
        """``f(A) = {b : ab allowed for all a in A}`` as a mask AND."""
        cached = self._partner_cache.get(mask)
        if cached is not None:
            _trace.add("galois.cache.hit")
            return cached
        _trace.add("galois.cache.miss")
        if mask == 0:
            result = 0
        else:
            result = (1 << self.n) - 1
            for index in iter_bits(mask):
                result &= self.compat[index]
        self._partner_cache[mask] = result
        return result

    def galois_closed_sets(self) -> tuple[int, ...]:
        """The intersection lattice generated by single-label images.

        These are exactly the closed sets ``A = f(f(A))`` paired by
        :func:`maximize_edge_constraint_kernel`; memoized because every
        ``R`` application and several lemma checkers need them.
        """
        if self._closed_sets is not None:
            return self._closed_sets
        generators = set(self.compat)
        generators.discard(0)
        closed: set[int] = set(generators)
        frontier = list(generators)
        while frontier:
            _budget.check_configurations(len(closed), phase="edge-maximization")
            current = frontier.pop()
            for other in list(closed):
                meet = current & other
                if meet and meet not in closed:
                    closed.add(meet)
                    frontier.append(meet)
        self._closed_sets = tuple(sorted(closed))
        return self._closed_sets

    # -- Node strength relation and right-closed sets --------------------

    def node_ge_masks(self) -> list[int]:
        """``ge[weak]`` = mask of labels at least as strong as ``weak``
        w.r.t. the node constraint (the full replacement-test preorder,
        reflexive and including equivalences — the mask twin of
        :meth:`repro.core.diagram.Diagram.at_least_as_strong`)."""
        if self._node_ge is not None:
            return self._node_ge
        n = self.n
        containing: list[list[tuple[int, ...]]] = [[] for _ in range(n)]
        for configuration in self.node_configs:
            for index in sorted(set(configuration)):
                containing[index].append(configuration)
        ge = [[False] * n for _ in range(n)]
        for strong in range(n):
            for weak in range(n):
                if strong == weak:
                    ge[strong][weak] = True
                    continue
                ok = True
                for configuration in containing[weak]:
                    replaced = list(configuration)
                    replaced.remove(weak)
                    replaced.append(strong)
                    replaced.sort()
                    if tuple(replaced) not in self.node_config_set:
                        ok = False
                        break
                ge[strong][weak] = ok
        self._node_ge = [
            mask_from_ids(strong for strong in range(n) if ge[strong][weak])
            for weak in range(n)
        ]
        return self._node_ge

    def edge_ge_masks(self) -> list[int]:
        """``ge[weak]`` = mask of labels at least as strong as ``weak``
        w.r.t. the edge constraint.

        For arity 2 the replacement test collapses to compatible-set
        containment: ``strong >= weak`` iff every partner of ``weak``
        is a partner of ``strong`` (this also covers replacing one end
        of an allowed ``weak weak`` pair).
        """
        return [
            mask_from_ids(
                strong
                for strong in range(self.n)
                if is_subset(self.compat[weak], self.compat[strong])
            )
            for weak in range(self.n)
        ]

    def node_strict_successors(self) -> list[int]:
        """``successors[i]`` = mask of labels strictly stronger than i
        w.r.t. the node constraint (the diagram of Observation 4)."""
        if self._node_strict_successors is not None:
            return self._node_strict_successors
        ge = self.node_ge_masks()
        successors = [
            mask_from_ids(
                strong
                for strong in iter_bits(ge[weak])
                if strong != weak and not ge[strong] & bit(weak)
            )
            for weak in range(self.n)
        ]
        self._node_strict_successors = successors
        return successors

    def node_right_closed_sets(self) -> tuple[int, ...]:
        """All non-empty right-closed sets w.r.t. the node constraint.

        Every right-closed set is the union of the upward closures of
        its members, so the sets are enumerated incrementally as unions
        of ``up[i] = {i} | successors[i]`` — output-sensitive, unlike
        the reference powerset scan.
        """
        if self._node_right_closed is not None:
            return self._node_right_closed
        successors = self.node_strict_successors()
        up = [bit(index) | successors[index] for index in range(self.n)]
        sets: set[int] = {0}
        for index in range(self.n):
            closure_of_index = up[index]
            sets |= {existing | closure_of_index for existing in sets}
            _budget.check_configurations(
                len(sets), phase="node-maximization", stage="right-closed"
            )
        sets.discard(0)
        self._node_right_closed = tuple(
            sorted(sets, key=lambda mask: (popcount(mask), tuple(iter_bits(mask))))
        )
        return self._node_right_closed

    def node_prefix_closure(self) -> frozenset[int]:
        """All sub-multisets of allowed node configurations, packed.

        A multiset of label ids is *packed* into one int by giving each
        label a ``delta.bit_length()``-wide count field
        (:func:`pack_ids`), so extending a partial configuration by one
        label is a single integer add instead of a tuple sort — the
        profiled hot spot of the maximization DFS.
        """
        if self._node_prefix_closure is not None:
            return self._node_prefix_closure
        shift = self.delta.bit_length()
        closure: set[int] = set()
        for configuration in self.node_configs:
            for size in range(len(configuration) + 1):
                for combo in itertools.combinations(configuration, size):
                    closure.add(pack_ids(combo, shift))
        self._node_prefix_closure = frozenset(closure)
        return self._node_prefix_closure

    # -- Zero-round predicates ------------------------------------------

    def self_compatible_mask(self) -> int:
        """Labels L with LL allowed on an edge, as a mask."""
        return mask_from_ids(
            index for index in range(self.n) if self.compat[index] & bit(index)
        )

    def pn_solvable(self) -> bool:
        """Mask form of the general-PN 0-round test (Lemma 12 setting)."""
        for configuration in self.node_configs:
            support = mask_from_ids(configuration)
            if all(
                is_subset(support, self.compat[index])
                for index in iter_bits(support)
            ):
                return True
        return False

    def symmetric_solvable(self) -> bool:
        """Mask form of the symmetric-port 0-round test (Lemma 12)."""
        self_compatible = self.self_compatible_mask()
        return any(
            is_subset(mask_from_ids(configuration), self_compatible)
            for configuration in self.node_configs
        )


# ---------------------------------------------------------------------------
# Maximization steps
# ---------------------------------------------------------------------------

def edge_pairing_chunk(
    compat: tuple[int, ...],
    closed_sets: tuple[int, ...],
    low: int,
    high: int,
) -> list[tuple[int, int]]:
    """Galois-pair the closed sets in ``closed_sets[low:high]``.

    Each closed set is tested independently (``A`` is kept with its
    partner ``f(A)`` iff ``f(f(A)) == A``), so the serial pairing loop
    is exactly the concatenation of contiguous slices — the unit of
    work the parallel fan-out distributes.  Recomputes partners from
    the raw compatibility masks since workers have no
    :class:`KernelProblem` memo.
    """
    full = (1 << len(compat)) - 1

    def partner(mask: int) -> int:
        if mask == 0:
            return 0
        result = full
        for index in iter_bits(mask):
            result &= compat[index]
        return result

    pairs: list[tuple[int, int]] = []
    for left in closed_sets[low:high]:
        right = partner(left)
        if right and partner(right) == left:
            pairs.append((left, right))
    return pairs


def maximize_edge_constraint_kernel(
    problem: Problem, *, pool: KernelPool | None = None
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.maximize_edge_constraint`.

    The closed-set lattice is always built serially (it is inherently
    sequential and budget-checked); with a usable ``pool`` the pairing
    loop over the lattice fans out as contiguous slices.
    """
    kernel = KernelProblem.of(problem)
    interner = kernel.interner
    closed_sets = kernel.galois_closed_sets()
    _trace.add("edge.closed_sets", len(closed_sets))
    pairs: list[tuple[int, int]] | None = None
    if pool is not None and len(closed_sets) > 1:
        # One closed set per unit; the scheduler groups units into
        # shards (slice width is the memory estimate) and merges them
        # back in index order, so the pair list equals the serial loop.
        chunks = pool.map_chunks(
            "edge-pair",
            (tuple(kernel.compat), closed_sets),
            len(closed_sets),
            phase="edge-maximization",
        )
        if chunks is not None:
            pairs = [pair for chunk in chunks for pair in chunk]
    if pairs is None:
        pairs = []
        for left in closed_sets:
            right = kernel.partner(left)
            if right and kernel.partner(right) == left:
                pairs.append((left, right))
    configurations: set[Configuration] = {
        Configuration(
            (interner.labels_of_mask(left), interner.labels_of_mask(right))
        )
        for left, right in pairs
    }
    if not configurations:
        raise InvalidProblem(
            "edge constraint admits no maximal configuration",
            operator="R",
            alphabet_size=kernel.n,
            closed_sets=len(kernel.galois_closed_sets()),
        )
    return Constraint(configurations)


def pack_ids(ids: Iterable[int], shift: int) -> int:
    """Pack a multiset of label ids into one int (count fields of
    ``shift`` bits per label).  Bijective for counts below ``2**shift``,
    so packed ints compare equal exactly when the multisets do."""
    packed = 0
    for label_id in ids:
        packed += 1 << (shift * label_id)
    return packed


def unpack_ids(packed: int, shift: int) -> tuple[int, ...]:
    """Invert :func:`pack_ids`, yielding the sorted id tuple."""
    ids: list[int] = []
    field = (1 << shift) - 1
    label_id = 0
    while packed:
        count = packed & field
        ids.extend([label_id] * count)
        packed >>= shift
        label_id += 1
    return tuple(ids)


def grow_frontier(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
) -> frozenset[int] | None:
    """Packed-int twin of the reference ``_grow_frontier`` (all-or-nothing).

    ``member_steps`` holds ``1 << (shift * label_id)`` per member of the
    candidate set, so each extension is one add plus one set lookup.
    """
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended not in closure:
                return None
            add(extended)
    return frozenset(grown)


def grow_frontier_exists(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
) -> frozenset[int]:
    """Packed-int twin of ``_grow_frontier_exists`` (keep survivors)."""
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended in closure:
                add(extended)
    return frozenset(grown)


def search_maximization_chunk(
    candidates: tuple[int, ...],
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    first_index: int,
) -> list[tuple[int, ...]]:
    """Explore the DFS subtree whose first chosen set is ``candidates[first_index]``.

    This is the unit of work the parallel fan-out distributes: the
    serial search is exactly the concatenation of the chunks for
    ``first_index = 0 .. len(candidates) - 1``, so chunked results are
    order- and content-identical to a single DFS.
    """
    results: list[tuple[int, ...]] = []
    initial = grow_frontier(frozenset([0]), member_steps[first_index], closure)
    if initial is None:
        return results

    def extend(start: int, chosen: list[int], frontier: frozenset[int]) -> None:
        if len(chosen) == arity:
            results.append(tuple(chosen))
            return
        for index in range(start, len(candidates)):
            grown = grow_frontier(frontier, member_steps[index], closure)
            if grown is None:
                continue
            chosen.append(candidates[index])
            extend(index, chosen, grown)
            chosen.pop()

    if arity == 1:
        results.append((candidates[first_index],))
    else:
        extend(first_index, [candidates[first_index]], initial)
    return results


def prune_non_maximal_masks(
    configurations: list[tuple[int, ...]], candidate_sets: Iterable[int]
) -> list[tuple[int, ...]]:
    """Mask twin of the reference ``_prune_non_maximal`` (same near-linear
    single-coordinate-enlargement argument, with int-subset tests)."""
    candidates = list(candidate_sets)
    passing = {tuple(sorted(sets)) for sets in configurations}
    supersets: dict[int, list[int]] = {
        mask: [other for other in candidates if is_strict_subset(mask, other)]
        for mask in candidates
    }
    keep: list[tuple[int, ...]] = []
    for sets in configurations:
        dominated = False
        unique_positions = {mask: index for index, mask in enumerate(sets)}
        for mask, index in unique_positions.items():
            for bigger in supersets[mask]:
                enlarged = list(sets)
                enlarged[index] = bigger
                if tuple(sorted(enlarged)) in passing:
                    dominated = True
                    break
            if dominated:
                break
        if not dominated:
            keep.append(sets)
    return keep


def maximize_node_constraint_kernel(
    problem: Problem, *, workers: int | None = None, pool: KernelPool | None = None
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.maximize_node_constraint`.

    With a usable ``pool`` (or ``workers > 1``, which builds a
    transient one) the arity-Delta DFS fans out over a
    ``multiprocessing`` pool, chunked by the top-level right-closed-set
    prefix (see :mod:`repro.core.kernel.parallel`); otherwise it runs
    serially with per-node budget checkpoints exactly like the
    reference implementation.
    """
    kernel = KernelProblem.of(problem)
    interner = kernel.interner
    candidates = kernel.node_right_closed_sets()
    _trace.add("node.right_closed_sets", len(candidates))
    shift = kernel.delta.bit_length()
    member_steps = tuple(
        tuple(1 << (shift * label_id) for label_id in iter_bits(mask))
        for mask in candidates
    )
    closure = kernel.node_prefix_closure()
    delta = kernel.delta
    parallel_requested = pool is not None or (
        workers is not None and workers > 1
    )
    if parallel_requested and len(candidates) > 1:
        from repro.core.kernel.parallel import (
            KernelPool,
            run_chunks_serial,
        )

        payload = (candidates, member_steps, closure, delta)
        count = len(candidates)
        if pool is not None:
            chunks = pool.map_chunks(
                "node-max", payload, count, phase="node-maximization"
            )
        else:
            with KernelPool(workers) as owned:
                chunks = owned.map_chunks(
                    "node-max", payload, count, phase="node-maximization"
                )
        if chunks is None:
            chunks = run_chunks_serial(
                "node-max", payload, count, phase="node-maximization"
            )
        results = [item for chunk in chunks for item in chunk]
    else:
        results = []

        def extend(start: int, chosen: list[int], frontier: frozenset[int]) -> None:
            _budget.check_configurations(
                len(results), phase="node-maximization", depth=len(chosen)
            )
            if len(chosen) == delta:
                results.append(tuple(chosen))
                return
            for index in range(start, len(candidates)):
                grown = grow_frontier(frontier, member_steps[index], closure)
                if grown is None:
                    continue
                chosen.append(candidates[index])
                extend(index, chosen, grown)
                chosen.pop()

        extend(0, [], frozenset([0]))
    maximal = prune_non_maximal_masks(results, candidates)
    if not maximal:
        raise InvalidProblem(
            "node constraint admits no maximal configuration",
            operator="Rbar",
            alphabet_size=kernel.n,
            delta=delta,
            candidate_sets=len(candidates),
        )
    return Constraint(
        Configuration(interner.labels_of_mask(mask) for mask in sets)
        for sets in maximal
    )


# ---------------------------------------------------------------------------
# Existential steps
# ---------------------------------------------------------------------------

def search_existential_chunk(
    member_steps: tuple[tuple[int, ...], ...],
    closure: frozenset[int],
    arity: int,
    first_index: int,
) -> list[tuple[int, ...]]:
    """Explore the existential DFS subtree rooted at label ``first_index``.

    Returns label-*index* tuples (the caller owns the label list); the
    union over ``first_index = 0 .. len(member_steps) - 1`` is exactly
    the serial search's configuration set, since the serial DFS chooses
    its first label in the same index order.
    """
    results: list[tuple[int, ...]] = []
    initial = grow_frontier_exists(
        frozenset([0]), member_steps[first_index], closure
    )
    if not initial:
        return results
    if arity == 1:
        return [(first_index,)]

    def extend(
        start: int, chosen: list[int], frontier: frozenset[int]
    ) -> None:
        if len(chosen) == arity:
            results.append(tuple(chosen))
            return
        for index in range(start, len(member_steps)):
            grown = grow_frontier_exists(frontier, member_steps[index], closure)
            if not grown:
                continue
            chosen.append(index)
            extend(index, chosen, grown)
            chosen.pop()

    extend(first_index, [first_index], initial)
    return results


def existential_constraint_kernel(
    old_constraint: Constraint,
    new_labels: Iterable[frozenset],
    arity: int,
    *,
    pool: KernelPool | None = None,
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.existential_constraint`.

    With a usable ``pool`` the DFS fans out chunked by the first chosen
    label; the set union of the chunks equals the serial result.
    """
    labels = sorted(set(new_labels), key=_set_sort_key)
    base: set[Hashable] = set(old_constraint.labels_used())
    for label_set in labels:
        base |= label_set
    interner = LabelInterner(base)
    shift = max(arity, old_constraint.arity).bit_length()
    member_steps = tuple(
        tuple(
            1 << (shift * label_id)
            for label_id in sorted(interner.id_of(member) for member in label_set)
        )
        for label_set in labels
    )
    closure: set[int] = set()
    for configuration in old_constraint.configurations:
        items = interner.ids_of(configuration.items)
        for size in range(len(items) + 1):
            for combo in itertools.combinations(items, size):
                closure.add(pack_ids(combo, shift))
    closure_frozen = frozenset(closure)
    results: set[Configuration] = set()
    if pool is not None and len(labels) > 1:
        from repro.core.kernel.parallel import run_chunks_serial

        payload = (member_steps, closure_frozen, arity)
        chunks = pool.map_chunks(
            "exists", payload, len(labels), phase="existential"
        )
        if chunks is None:
            chunks = run_chunks_serial(
                "exists", payload, len(labels), phase="existential"
            )
        results = {
            Configuration(labels[index] for index in ids)
            for chunk in chunks
            for ids in chunk
        }
    else:

        def extend(
            start: int, chosen: list[frozenset], frontier: frozenset[int]
        ) -> None:
            _budget.check_configurations(
                len(results), phase="existential", depth=len(chosen)
            )
            if len(chosen) == arity:
                results.add(Configuration(chosen))
                return
            for index in range(start, len(labels)):
                grown = grow_frontier_exists(
                    frontier, member_steps[index], closure_frozen
                )
                if not grown:
                    continue
                chosen.append(labels[index])
                extend(index, chosen, grown)
                chosen.pop()

        extend(0, [], frozenset([0]))
    if not results:
        raise InvalidProblem(
            "existential step produced an empty constraint",
            arity=arity,
            alphabet_size=len(labels),
            old_configurations=len(old_constraint),
        )
    return Constraint(results)


# ---------------------------------------------------------------------------
# The R / Rbar operators
# ---------------------------------------------------------------------------

def kernel_R(problem: Problem, *, pool: KernelPool | None = None) -> Problem:
    """Kernel twin of :func:`repro.core.round_elimination.R`.

    A usable ``pool`` (a :class:`~repro.core.kernel.parallel.KernelPool`)
    fans out both the edge-side pairing and the existential DFS.
    """
    with _trace.span(
        "op.R", engine="kernel", problem=problem.name, delta=problem.delta
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        edge_constraint = maximize_edge_constraint_kernel(problem, pool=pool)
        sigma = sorted(edge_constraint.labels_used(), key=_set_sort_key)
        _budget.check_alphabet(
            len(sigma), operator="R", alphabet_before=len(problem.alphabet)
        )
        node_constraint = existential_constraint_kernel(
            problem.node_constraint, sigma, problem.delta, pool=pool
        )
        span.add("labels.out", len(sigma))
        span.add("node.configs.out", len(node_constraint))
        span.add("edge.configs.out", len(edge_constraint))
    name = f"R({problem.name})" if problem.name else "R"
    return Problem(Alphabet(sigma), node_constraint, edge_constraint, name=name)


def kernel_Rbar(
    problem: Problem, *, workers: int | None = None, pool: KernelPool | None = None
) -> Problem:
    """Kernel twin of :func:`repro.core.round_elimination.Rbar`.

    ``workers > 1`` without a ``pool`` builds a transient
    :class:`~repro.core.kernel.parallel.KernelPool` shared by the
    maximization and existential steps of this one call; a caller that
    already owns a pool (``speedup``) passes it in instead.
    """
    if pool is None and workers is not None and workers > 1:
        from repro.core.kernel.parallel import KernelPool

        with KernelPool(workers) as owned:
            return kernel_Rbar(problem, workers=workers, pool=owned)
    with _trace.span(
        "op.Rbar", engine="kernel", problem=problem.name, delta=problem.delta
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        node_constraint = maximize_node_constraint_kernel(
            problem, workers=workers, pool=pool
        )
        sigma = sorted(node_constraint.labels_used(), key=_set_sort_key)
        _budget.check_alphabet(
            len(sigma), operator="Rbar", alphabet_before=len(problem.alphabet)
        )
        edge_constraint = existential_constraint_kernel(
            problem.edge_constraint, sigma, 2, pool=pool
        )
        span.add("labels.out", len(sigma))
        span.add("node.configs.out", len(node_constraint))
        span.add("edge.configs.out", len(edge_constraint))
    name = f"Rbar({problem.name})" if problem.name else "Rbar"
    return Problem(Alphabet(sigma), node_constraint, edge_constraint, name=name)


# ---------------------------------------------------------------------------
# Relaxation and relabeling fast paths
# ---------------------------------------------------------------------------

def _mask_match(source: tuple[int, ...], target: tuple[int, ...]) -> bool:
    """Kuhn matching of source positions into target supersets, on masks."""
    assignment: dict[int, int] = {}

    def try_assign(source_index: int, visited: set[int]) -> bool:
        small = source[source_index]
        for target_index, big in enumerate(target):
            if target_index in visited or not is_subset(small, big):
                continue
            visited.add(target_index)
            if target_index not in assignment or try_assign(
                assignment[target_index], visited
            ):
                assignment[target_index] = source_index
                return True
        return False

    return all(
        try_assign(source_index, set()) for source_index in range(len(source))
    )


def all_relax_into_kernel(
    configurations: Iterable[Configuration], targets: Iterable[Configuration]
) -> bool:
    """Kernel twin of :func:`repro.core.relaxation.all_relax_into`.

    Interns the member labels of every set label once, so the pointwise
    subset tests of Definition 7 become int comparisons.
    """
    configuration_list = list(configurations)
    target_list = list(targets)
    base: set[Hashable] = set()
    for configuration in itertools.chain(configuration_list, target_list):
        for label_set in configuration.items:
            base |= label_set
    interner = LabelInterner(base)

    def as_masks(configuration: Configuration) -> tuple[int, ...]:
        return tuple(interner.mask_of(label_set) for label_set in configuration.items)

    targets_by_arity: dict[int, list[tuple[int, ...]]] = {}
    for target in target_list:
        targets_by_arity.setdefault(target.arity, []).append(as_masks(target))
    for configuration in configuration_list:
        masks = as_masks(configuration)
        candidates = targets_by_arity.get(configuration.arity, [])
        if not any(_mask_match(masks, candidate) for candidate in candidates):
            return False
    return True


def find_label_relabeling_kernel(source: Problem, target: Problem) -> dict | None:
    """Kernel twin of :func:`repro.core.relaxation.find_label_relabeling`.

    Returns *a* valid relabeling (possibly a different witness than the
    reference search finds, since candidates are tried in interner
    order), or ``None`` exactly when the reference returns ``None``.
    """
    if source.delta != target.delta:
        return None
    source_interner = LabelInterner(source.alphabet)
    target_interner = LabelInterner(target.alphabet)

    def interned_constraint(
        constraint: Constraint, interner: LabelInterner
    ) -> frozenset[frozenset[int]]:
        return frozenset(
            interner.ids_of(configuration.items)
            for configuration in constraint.configurations
        )

    pairs = [
        (
            [
                source_interner.ids_of(configuration.items)
                for configuration in constraint.configurations
            ],
            interned_constraint(target_constraint, target_interner),
        )
        for constraint, target_constraint in (
            (source.node_constraint, target.node_constraint),
            (source.edge_constraint, target.edge_constraint),
        )
    ]
    source_count = len(source_interner)
    target_ids = range(len(target_interner))
    mapping: dict[int, int] = {}

    def consistent_so_far() -> bool:
        assigned = mask_from_ids(mapping)
        for source_configs, target_set in pairs:
            for configuration in source_configs:
                if not is_subset(mask_from_ids(configuration), assigned):
                    continue
                image = tuple(sorted(mapping[label] for label in configuration))
                if image not in target_set:
                    return False
        return True

    def assign(index: int) -> bool:
        _budget.checkpoint(phase="relabeling-search", assigned=index)
        if index == source_count:
            return True
        for candidate in target_ids:
            mapping[index] = candidate
            if consistent_so_far() and assign(index + 1):
                return True
            del mapping[index]
        return False

    if assign(0):
        return {
            source_interner.label_of(source_id): target_interner.label_of(target_id)
            for source_id, target_id in mapping.items()
        }
    return None


# ---------------------------------------------------------------------------
# Zero-round fast paths
# ---------------------------------------------------------------------------

def zero_round_solvable_pn_kernel(problem: Problem) -> bool:
    """Kernel twin of :func:`repro.core.solvability.zero_round_solvable_pn`."""
    return KernelProblem.of(problem).pn_solvable()


def zero_round_solvable_symmetric_kernel(problem: Problem) -> bool:
    """Kernel twin of :func:`repro.core.solvability.zero_round_solvable_symmetric`."""
    return KernelProblem.of(problem).symmetric_solvable()


__all__ = [
    "KernelProblem",
    "maximize_edge_constraint_kernel",
    "maximize_node_constraint_kernel",
    "existential_constraint_kernel",
    "kernel_R",
    "kernel_Rbar",
    "all_relax_into_kernel",
    "find_label_relabeling_kernel",
    "zero_round_solvable_pn_kernel",
    "zero_round_solvable_symmetric_kernel",
    "grow_frontier",
    "grow_frontier_exists",
    "pack_ids",
    "unpack_ids",
    "search_maximization_chunk",
    "search_existential_chunk",
    "edge_pairing_chunk",
    "prune_non_maximal_masks",
]
