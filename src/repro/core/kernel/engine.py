"""The fast-path round-elimination kernel.

Semantically this module is a re-implementation of
:mod:`repro.core.round_elimination` (and the hot predicates of
:mod:`repro.core.solvability` / :mod:`repro.core.relaxation`) over an
interned representation: labels become dense integer ids, label sets
become int bitmasks, and configurations become sorted id tuples.  All
the ``frozenset`` algebra and ``render_label``-keyed sorting of the
reference engine — its profiled hot spots — turn into single int
instructions and native int-tuple sorts.

The contract is strict: every public function here returns *exactly*
the objects the reference implementation returns (the same
``frozenset`` labels, the same :class:`~repro.core.constraints.Constraint`
contents), so the two engines are interchangeable behind the
``use_kernel`` flags and the differential oracle in ``tests/oracle.py``
can assert equality, not just isomorphism.

A :class:`KernelProblem` memoizes the per-problem artifacts that the
reference engine recomputes from scratch on every call: single-label
Galois images, the closed-set lattice of the edge constraint, the node
strength relation, right-closed sets, and the prefix closure used by
the maximization DFS.  The cache lives on the ``Problem`` instance
(:meth:`KernelProblem.of`), so lemma checkers that hit the same problem
repeatedly pay for the analysis once.

Budgets: the kernel calls the same ambient-budget checkpoints
(:mod:`repro.robustness.budget`) with the same phase names as the
reference engine, so ``governed()`` wall clocks, configuration caps and
fault-injection probes keep working on the fast path.  In parallel mode
the checkpoints fire between top-level DFS chunks (workers themselves
run unbudgeted); see :mod:`repro.core.kernel.parallel`.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable

from repro.core import cache as _cache
from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.kernel.bitops import (
    bit,
    bits_list,
    is_strict_subset,
    is_subset,
    iter_bits,
    mask_from_ids,
    popcount,
)
from repro.core.kernel.interning import LabelInterner, transport_registry
from repro.core.labels import Alphabet, render_label
from repro.core.problem import Problem
from repro.observability import trace as _trace
from repro.observability.profiling import section as _prof_section
from repro.robustness import budget as _budget
from repro.robustness.errors import InvalidProblem
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.kernel.parallel import KernelPool


def _set_sort_key(labels: frozenset) -> tuple:
    return (len(labels), sorted(render_label(label) for label in labels))


# hotpath
def partner_mask(compat: tuple[int, ...] | list[int], full: int, mask: int) -> int:
    """``f(A) = {b : ab allowed for all a in A}`` from raw compat masks.

    The one shared Galois-image loop: :meth:`KernelProblem.partner`
    wraps it with the memo, and :func:`edge_pairing_chunk` calls it
    directly inside workers (which have no :class:`KernelProblem`).
    """
    if mask == 0:
        return 0
    result = full
    remaining = mask
    while remaining:
        low_bit = remaining & -remaining
        result &= compat[low_bit.bit_length() - 1]
        remaining ^= low_bit
    return result


def closure_machine(
    closure: Iterable[int], shift: int, label_count: int
) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
    """Compile a packed prefix closure into a transition table.

    Elements are the packed multisets in sorted order — index 0 is
    always the empty pack ``0`` — and ``trans[label][element]`` is the
    element index of ``element + label`` or ``-1`` when the extension
    leaves the closure.  The DFS inner step thus becomes one tuple
    lookup on small ints instead of a big-int add plus a hash of a
    many-hundred-bit packed key, and frontiers shrink from
    ``frozenset`` objects to plain int bitmasks over element indices.

    A count field already at capacity (``2**shift - 1``) compiles to
    ``-1`` rather than letting the add carry into the next label's
    field: the raw add can alias an unrelated valid pack, and the
    aliasing is not relabeling-equivariant, which would make
    transported machines (:func:`_transported_view`) differ from fresh
    builds.  No search ever reads such an entry — a full field means
    the element's count sum is at least the capacity, which is at
    least the search arity, while frontiers are only ever grown at
    depth strictly below the arity — so the guard changes no live
    behavior (the parity suite pins this against the pre-machine
    recursion, which used the raw carrying add).
    """
    elements = tuple(sorted(closure))
    index = {element: position for position, element in enumerate(elements)}
    field = (1 << shift) - 1
    trans = tuple(
        tuple(
            -1
            if (element >> (shift * label_id)) & field == field
            else index.get(element + (1 << (shift * label_id)), -1)
            for element in elements
        )
        for label_id in range(label_count)
    )
    return elements, trans


class KernelProblem:
    """The interned view of one :class:`~repro.core.problem.Problem`."""

    __slots__ = (
        "problem",
        "interner",
        "n",
        "delta",
        "compat",
        "node_configs",
        "node_config_set",
        "_partner_cache",
        "_closed_sets",
        "_node_ge",
        "_node_strict_successors",
        "_node_right_closed",
        "_node_prefix_closure",
        "_node_machine",
    )

    def __init__(self, problem: Problem) -> None:
        self.problem = problem
        interner = LabelInterner(problem.alphabet)
        self.interner = interner
        self.n = len(interner)
        self.delta = problem.delta
        self.compat: list[int] = [
            interner.mask_of(problem.compatible_labels(label))
            for label in interner.labels
        ]
        self.node_configs: tuple[tuple[int, ...], ...] = tuple(
            sorted(
                interner.ids_of(configuration.items)
                for configuration in problem.node_constraint.configurations
            )
        )
        self.node_config_set = frozenset(self.node_configs)
        self._partner_cache: dict[int, int] = {}
        self._closed_sets: tuple[int, ...] | None = None
        self._node_ge: list[int] | None = None
        self._node_strict_successors: list[int] | None = None
        self._node_right_closed: tuple[int, ...] | None = None
        self._node_prefix_closure: frozenset[int] | None = None
        self._node_machine: (
            tuple[tuple[int, ...], tuple[tuple[int, ...], ...]] | None
        ) = None

    @classmethod
    def of(cls, problem: Problem) -> "KernelProblem":
        """The interned view, memoized on the problem instance.

        A problem that is a relabeling of a recently interned one
        (confirmed via the renaming-invariant fingerprint of
        :mod:`repro.core.cache`) receives the source's memoized
        artifacts transported through the label bijection instead of a
        from-scratch analysis — ``kernel.intern.transported`` counts
        these, and neither ``kernel.cache.miss`` nor the Galois
        ``galois.cache.miss`` counters grow for the transported parts.
        """
        cached = problem._kernel_cache
        if cached is not None:
            _trace.add("kernel.cache.hit")
            return cached
        registry = transport_registry()
        cached = _transport_interned(cls, problem, registry)
        if cached is not None:
            _trace.add("kernel.intern.transported")
        else:
            _trace.add("kernel.cache.miss")
            with _prof_section("intern.build"):
                cached = cls(problem)
        problem._kernel_cache = cached
        registry.record(_cache.structure_key(problem), cached)
        return cached

    # -- Galois connection of the edge constraint ------------------------

    def partner(self, mask: int) -> int:
        """``f(A) = {b : ab allowed for all a in A}`` as a mask AND."""
        cached = self._partner_cache.get(mask)
        if cached is not None:
            _trace.add("galois.cache.hit")
            return cached
        _trace.add("galois.cache.miss")
        result = partner_mask(self.compat, (1 << self.n) - 1, mask)
        self._partner_cache[mask] = result
        return result

    def galois_closed_sets(self) -> tuple[int, ...]:
        """The intersection lattice generated by single-label images.

        These are exactly the closed sets ``A = f(f(A))`` paired by
        :func:`maximize_edge_constraint_kernel`; memoized because every
        ``R`` application and several lemma checkers need them.
        """
        if self._closed_sets is not None:
            return self._closed_sets
        generators = set(self.compat)
        generators.discard(0)
        closed: set[int] = set(generators)
        frontier = list(generators)
        while frontier:
            _budget.check_configurations(len(closed), phase="edge-maximization")
            current = frontier.pop()
            for other in list(closed):
                meet = current & other
                if meet and meet not in closed:
                    closed.add(meet)
                    frontier.append(meet)
        self._closed_sets = tuple(sorted(closed))
        return self._closed_sets

    # -- Node strength relation and right-closed sets --------------------

    def node_ge_masks(self) -> list[int]:
        """``ge[weak]`` = mask of labels at least as strong as ``weak``
        w.r.t. the node constraint (the full replacement-test preorder,
        reflexive and including equivalences — the mask twin of
        :meth:`repro.core.diagram.Diagram.at_least_as_strong`)."""
        if self._node_ge is not None:
            return self._node_ge
        n = self.n
        containing: list[list[tuple[int, ...]]] = [[] for _ in range(n)]
        for configuration in self.node_configs:
            for index in sorted(set(configuration)):
                containing[index].append(configuration)
        ge = [[False] * n for _ in range(n)]
        for strong in range(n):
            for weak in range(n):
                if strong == weak:
                    ge[strong][weak] = True
                    continue
                ok = True
                for configuration in containing[weak]:
                    replaced = list(configuration)
                    replaced.remove(weak)
                    replaced.append(strong)
                    replaced.sort()
                    if tuple(replaced) not in self.node_config_set:
                        ok = False
                        break
                ge[strong][weak] = ok
        self._node_ge = [
            mask_from_ids(strong for strong in range(n) if ge[strong][weak])
            for weak in range(n)
        ]
        return self._node_ge

    def edge_ge_masks(self) -> list[int]:
        """``ge[weak]`` = mask of labels at least as strong as ``weak``
        w.r.t. the edge constraint.

        For arity 2 the replacement test collapses to compatible-set
        containment: ``strong >= weak`` iff every partner of ``weak``
        is a partner of ``strong`` (this also covers replacing one end
        of an allowed ``weak weak`` pair).
        """
        return [
            mask_from_ids(
                strong
                for strong in range(self.n)
                if is_subset(self.compat[weak], self.compat[strong])
            )
            for weak in range(self.n)
        ]

    def node_strict_successors(self) -> list[int]:
        """``successors[i]`` = mask of labels strictly stronger than i
        w.r.t. the node constraint (the diagram of Observation 4)."""
        if self._node_strict_successors is not None:
            return self._node_strict_successors
        ge = self.node_ge_masks()
        successors = [
            mask_from_ids(
                strong
                for strong in iter_bits(ge[weak])
                if strong != weak and not ge[strong] & bit(weak)
            )
            for weak in range(self.n)
        ]
        self._node_strict_successors = successors
        return successors

    def node_right_closed_sets(self) -> tuple[int, ...]:
        """All non-empty right-closed sets w.r.t. the node constraint.

        Every right-closed set is the union of the upward closures of
        its members, so the sets are enumerated incrementally as unions
        of ``up[i] = {i} | successors[i]`` — output-sensitive, unlike
        the reference powerset scan.
        """
        if self._node_right_closed is not None:
            return self._node_right_closed
        successors = self.node_strict_successors()
        up = [bit(index) | successors[index] for index in range(self.n)]
        sets: set[int] = {0}
        for index in range(self.n):
            closure_of_index = up[index]
            sets |= {existing | closure_of_index for existing in sets}
            _budget.check_configurations(
                len(sets), phase="node-maximization", stage="right-closed"
            )
        sets.discard(0)
        self._node_right_closed = tuple(
            sorted(sets, key=lambda mask: (popcount(mask), tuple(iter_bits(mask))))
        )
        return self._node_right_closed

    def node_prefix_closure(self) -> frozenset[int]:
        """All sub-multisets of allowed node configurations, packed.

        A multiset of label ids is *packed* into one int by giving each
        label a ``delta.bit_length()``-wide count field
        (:func:`pack_ids`), so extending a partial configuration by one
        label is a single integer add instead of a tuple sort — the
        profiled hot spot of the maximization DFS.
        """
        if self._node_prefix_closure is not None:
            return self._node_prefix_closure
        shift = self.delta.bit_length()
        closure: set[int] = set()
        checked = 0
        for configuration in self.node_configs:
            for size in range(len(configuration) + 1):
                # Stride the probe: small closures stay silent, runaway
                # growth is caught within 64 packed prefixes.
                if len(closure) - checked >= 64:
                    checked = len(closure)
                    _budget.check_configurations(
                        len(closure), phase="node-prefix-closure"
                    )
                for combo in itertools.combinations(configuration, size):
                    closure.add(pack_ids(combo, shift))
        self._node_prefix_closure = frozenset(closure)
        return self._node_prefix_closure

    def node_dfs_machine(
        self,
    ) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """The prefix closure compiled to a transition table (memoized).

        See :func:`closure_machine` — this is what the allocation-free
        maximization DFS actually walks; the raw packed closure of
        :meth:`node_prefix_closure` stays available for the reference
        twins and the property tests.
        """
        if self._node_machine is not None:
            return self._node_machine
        machine = closure_machine(
            self.node_prefix_closure(), self.delta.bit_length(), self.n
        )
        self._node_machine = machine
        return machine

    # -- Zero-round predicates ------------------------------------------

    def self_compatible_mask(self) -> int:
        """Labels L with LL allowed on an edge, as a mask."""
        return mask_from_ids(
            index for index in range(self.n) if self.compat[index] & bit(index)
        )

    def pn_solvable(self) -> bool:
        """Mask form of the general-PN 0-round test (Lemma 12 setting)."""
        for configuration in self.node_configs:
            support = mask_from_ids(configuration)
            if all(
                is_subset(support, self.compat[index])
                for index in iter_bits(support)
            ):
                return True
        return False

    def symmetric_solvable(self) -> bool:
        """Mask form of the symmetric-port 0-round test (Lemma 12)."""
        self_compatible = self.self_compatible_mask()
        return any(
            is_subset(mask_from_ids(configuration), self_compatible)
            for configuration in self.node_configs
        )


# ---------------------------------------------------------------------------
# Cross-step artifact transport
# ---------------------------------------------------------------------------

def _permute_mask(mask: int, perm: list[int]) -> int:
    """The image of a label-set mask under the id bijection ``perm``."""
    result = 0
    remaining = mask
    while remaining:
        low_bit = remaining & -remaining
        result |= 1 << perm[low_bit.bit_length() - 1]
        remaining ^= low_bit
    return result


def _permute_pack(packed: int, shift: int, perm: list[int]) -> int:
    """The image of a packed count-vector under the id bijection."""
    field = (1 << shift) - 1
    result = 0
    label_id = 0
    while packed:
        count = packed & field
        if count:
            result += count << (shift * perm[label_id])
        packed >>= shift
        label_id += 1
    return result


def _transport_interned(cls, problem: Problem, registry) -> "KernelProblem | None":
    """A :class:`KernelProblem` for ``problem`` built by relabeling a
    recorded isomorphic source, or ``None`` when no source matches.

    The registry's structure key is a necessary condition only, so the
    canonical fingerprint confirms each candidate before the transport
    runs — but only *already memoized* fingerprints are consulted
    (:func:`repro.core.cache.cached_fingerprint`), so interning never
    triggers fresh canonicalization work or its budget checkpoints.
    Chain drivers that canonicalize anyway (condensation ranks each
    iterate) get transport for free; plain speedup chains, whose steps
    are never isomorphic, pay nothing.  Transport is sound because
    every memoized artifact — compat masks, the Galois lattice and
    partner cache, the strength preorder, right-closed sets, prefix
    closure, and the compiled DFS machine — is equivariant under label
    bijections.
    """
    digest = _cache.cached_fingerprint(problem)
    if digest is None:
        return None
    for source in registry.candidates(_cache.structure_key(problem)):
        if source.problem is problem:
            continue
        if _cache.cached_fingerprint(source.problem) != digest:
            continue
        with _prof_section("intern.transport"):
            return _transported_view(cls, problem, source)
    return None


def _transported_view(
    cls, problem: Problem, source: "KernelProblem"
) -> "KernelProblem":
    """Carry every memoized artifact of ``source`` through the label
    bijection onto ``problem`` (position-wise along canonical orders)."""
    target: KernelProblem = cls.__new__(cls)
    target.problem = problem
    interner = LabelInterner(problem.alphabet)
    target.interner = interner
    n = len(interner)
    target.n = n
    target.delta = problem.delta
    source_order = _cache.canonical_form(source.problem).order
    target_order = _cache.canonical_form(problem).order
    perm = [0] * n
    source_id_of = source.interner.id_of
    for source_label, target_label in zip(source_order, target_order):
        perm[source_id_of(source_label)] = interner.id_of(target_label)
    compat = [0] * n
    for source_id in range(n):
        compat[perm[source_id]] = _permute_mask(source.compat[source_id], perm)
    target.compat = compat
    target.node_configs = tuple(
        sorted(
            tuple(sorted(perm[label_id] for label_id in configuration))
            for configuration in source.node_configs
        )
    )
    target.node_config_set = frozenset(target.node_configs)
    target._partner_cache = {
        _permute_mask(query, perm): _permute_mask(image, perm)
        for query, image in source._partner_cache.items()
    }
    if source._closed_sets is None:
        target._closed_sets = None
    else:
        target._closed_sets = tuple(
            sorted(_permute_mask(mask, perm) for mask in source._closed_sets)
        )
    if source._node_ge is None:
        target._node_ge = None
    else:
        ge = [0] * n
        for weak in range(n):
            ge[perm[weak]] = _permute_mask(source._node_ge[weak], perm)
        target._node_ge = ge
    if source._node_strict_successors is None:
        target._node_strict_successors = None
    else:
        successors = [0] * n
        for weak in range(n):
            successors[perm[weak]] = _permute_mask(
                source._node_strict_successors[weak], perm
            )
        target._node_strict_successors = successors
    if source._node_right_closed is None:
        target._node_right_closed = None
    else:
        target._node_right_closed = tuple(
            sorted(
                (_permute_mask(mask, perm) for mask in source._node_right_closed),
                key=lambda mask: (popcount(mask), tuple(iter_bits(mask))),
            )
        )
    shift = target.delta.bit_length()
    if source._node_prefix_closure is None:
        target._node_prefix_closure = None
    else:
        target._node_prefix_closure = frozenset(
            _permute_pack(packed, shift, perm)
            for packed in source._node_prefix_closure
        )
    if source._node_machine is None:
        target._node_machine = None
    else:
        old_elements, old_trans = source._node_machine
        mapped = [
            _permute_pack(element, shift, perm) for element in old_elements
        ]
        new_elements = tuple(sorted(mapped))
        position = {element: slot for slot, element in enumerate(new_elements)}
        reindex = [position[element] for element in mapped]
        new_trans: list[tuple[int, ...]] = [()] * n
        for label_id in range(n):
            row = old_trans[label_id]
            new_row = [-1] * len(new_elements)
            for old_slot, new_slot in enumerate(reindex):
                step = row[old_slot]
                new_row[new_slot] = reindex[step] if step >= 0 else -1
            new_trans[perm[label_id]] = tuple(new_row)
        target._node_machine = (new_elements, tuple(new_trans))
    return target


# ---------------------------------------------------------------------------
# Maximization steps
# ---------------------------------------------------------------------------

def edge_pairing_chunk(
    compat: tuple[int, ...],
    closed_sets: tuple[int, ...],
    low: int,
    high: int,
) -> list[tuple[int, int]]:
    """Galois-pair the closed sets in ``closed_sets[low:high]``.

    Each closed set is tested independently (``A`` is kept with its
    partner ``f(A)`` iff ``f(f(A)) == A``), so the serial pairing loop
    is exactly the concatenation of contiguous slices — the unit of
    work the parallel fan-out distributes.  Uses the shared
    :func:`partner_mask` on the raw compatibility masks since workers
    have no :class:`KernelProblem` memo.
    """
    full = (1 << len(compat)) - 1
    pairs: list[tuple[int, int]] = []
    for left in closed_sets[low:high]:
        right = partner_mask(compat, full, left)
        if right and partner_mask(compat, full, right) == left:
            pairs.append((left, right))
    return pairs


def maximize_edge_constraint_kernel(
    problem: Problem, *, pool: KernelPool | None = None
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.maximize_edge_constraint`.

    The closed-set lattice is always built serially (it is inherently
    sequential and budget-checked); with a usable ``pool`` the pairing
    loop over the lattice fans out as contiguous slices.
    """
    kernel = KernelProblem.of(problem)
    interner = kernel.interner
    with _prof_section("edge_max.lattice"):
        closed_sets = kernel.galois_closed_sets()
    _trace.add("edge.closed_sets", len(closed_sets))
    pairs: list[tuple[int, int]] | None = None
    with _prof_section("edge_max.pairing"):
        if pool is not None and len(closed_sets) > 1:
            # One closed set per unit; the scheduler groups units into
            # shards (slice width is the memory estimate) and merges
            # them back in index order, so the pair list equals the
            # serial loop.
            chunks = pool.map_chunks(
                "edge-pair",
                (tuple(kernel.compat), closed_sets),
                len(closed_sets),
                phase="edge-maximization",
            )
            if chunks is not None:
                pairs = [pair for chunk in chunks for pair in chunk]
        if pairs is None:
            pairs = []
            for left in closed_sets:
                right = kernel.partner(left)
                if right and kernel.partner(right) == left:
                    pairs.append((left, right))
    with _prof_section("edge_max.materialize"):
        configurations: set[Configuration] = {
            Configuration(
                (interner.labels_of_mask(left), interner.labels_of_mask(right))
            )
            for left, right in pairs
        }
    if not configurations:
        raise InvalidProblem(
            "edge constraint admits no maximal configuration",
            operator="R",
            alphabet_size=kernel.n,
            closed_sets=len(kernel.galois_closed_sets()),
        )
    return Constraint(configurations)


def pack_ids(ids: Iterable[int], shift: int) -> int:
    """Pack a multiset of label ids into one int (count fields of
    ``shift`` bits per label).  Bijective for counts below ``2**shift``,
    so packed ints compare equal exactly when the multisets do."""
    packed = 0
    for label_id in ids:
        packed += 1 << (shift * label_id)
    return packed


def unpack_ids(packed: int, shift: int) -> tuple[int, ...]:
    """Invert :func:`pack_ids`, yielding the sorted id tuple."""
    ids: list[int] = []
    field = (1 << shift) - 1
    label_id = 0
    while packed:
        count = packed & field
        ids.extend([label_id] * count)
        packed >>= shift
        label_id += 1
    return tuple(ids)


def grow_frontier(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
) -> frozenset[int] | None:
    """Packed-int twin of the reference ``_grow_frontier`` (all-or-nothing).

    ``member_steps`` holds ``1 << (shift * label_id)`` per member of the
    candidate set, so each extension is one add plus one set lookup.
    """
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended not in closure:
                return None
            add(extended)
    return frozenset(grown)


def grow_frontier_exists(
    frontier: frozenset[int],
    member_steps: tuple[int, ...],
    closure: frozenset[int],
) -> frozenset[int]:
    """Packed-int twin of ``_grow_frontier_exists`` (keep survivors)."""
    grown: set[int] = set()
    add = grown.add
    for partial in frontier:
        for step in member_steps:
            extended = partial + step
            if extended in closure:
                add(extended)
    return frozenset(grown)


# hotpath
def _maximization_dfs(
    candidates: tuple[int, ...],
    member_labels: tuple[tuple[int, ...], ...],
    trans: tuple[tuple[int, ...], ...],
    arity: int,
    lo: int,
    hi: int,
    budget_phase: str | None = None,
    stats: dict | None = None,
) -> list[tuple[int, ...]]:
    """The iterative all-or-nothing DFS over the closure machine.

    One explicit-stack loop serves both the serial search
    (``lo=0, hi=len(candidates)``, budgeted) and a parallel chunk
    (``lo=first_index, hi=first_index+1``, unbudgeted): frames are
    ``[cursor, limit, frontier_mask]`` plus a parallel ``chosen`` list
    of candidate indices, and frontier growth is memoized per candidate
    keyed on the frontier bitmask.  Emission order, failure conditions,
    and candidate-level grow counts (``stats['grow_calls']``) are
    pinned 1:1 to the old recursive search by the property tests.
    """
    results: list[tuple[int, ...]] = []
    count = len(candidates)
    element_count = len(trans[0]) if trans else 1
    element_range = range(element_count)
    # Per-label memos, built on first touch: ``label_valid[lab]`` is
    # the element mask from which ``lab`` can extend, ``label_image``
    # the per-element image bit.  Per-candidate: ``invalid[c]`` (any
    # frontier bit in it fails the all-or-nothing test in one AND) and
    # ``rows[c]`` (aggregated image row; success is one lookup + OR
    # per frontier element).
    label_valid: dict[int, int] = {}
    label_image: dict[int, list[int]] = {}
    invalid: list[int | None] = [None] * count
    rows: list[list[int] | None] = [None] * count
    grow_calls = 0
    if budget_phase is not None:
        _budget.check_configurations(0, phase=budget_phase, depth=0)
    chosen: list[int] = []
    stack: list[list] = [[lo, hi, 1, None]]
    while stack:
        frame = stack[-1]
        cursor = frame[0]
        if cursor == frame[1]:
            stack.pop()
            if chosen:
                chosen.pop()
            continue
        frame[0] = cursor + 1
        grow_calls += 1
        frontier = frame[2]
        bad = invalid[cursor]
        if bad is None:
            valid = -1
            for label_id in member_labels[cursor]:
                label_mask = label_valid.get(label_id)
                if label_mask is None:
                    transitions = trans[label_id]
                    label_mask = 0
                    for element in element_range:
                        if transitions[element] >= 0:
                            label_mask |= 1 << element
                    label_valid[label_id] = label_mask
                valid &= label_mask
            bad = ~valid
            invalid[cursor] = bad
        if frontier & bad:
            continue
        row = rows[cursor]
        if row is None:
            labels = member_labels[cursor]
            images: list[list[int]] = []
            for label_id in labels:
                image = label_image.get(label_id)
                if image is None:
                    transitions = trans[label_id]
                    image = [
                        (1 << transitions[element])
                        if transitions[element] >= 0
                        else 0
                        for element in element_range
                    ]
                    label_image[label_id] = image
                images.append(image)
            row = list(images[0])
            for image in images[1:]:
                row = [left | right for left, right in zip(row, image)]
            rows[cursor] = row
        # The frontier is constant for every cursor of this frame, so
        # its bit decomposition is computed once and cached in-frame.
        members = frame[3]
        if members is None:
            members = []
            remaining = frontier
            while remaining:
                low_bit = remaining & -remaining
                members.append(low_bit.bit_length() - 1)
                remaining ^= low_bit
            frame[3] = members
        grown = 0
        for element in members:
            grown |= row[element]
        chosen.append(cursor)
        depth = len(chosen)
        if depth == arity:
            if budget_phase is not None:
                _budget.check_configurations(
                    len(results), phase=budget_phase, depth=depth
                )
            results.append(tuple(candidates[index] for index in chosen))
            chosen.pop()
            continue
        if budget_phase is not None:
            _budget.check_configurations(
                len(results), phase=budget_phase, depth=depth
            )
        stack.append([cursor, count, grown, None])
    if stats is not None:
        stats["grow_calls"] = stats.get("grow_calls", 0) + grow_calls
    return results


# hotpath
def search_maximization_chunk(
    candidates: tuple[int, ...],
    member_labels: tuple[tuple[int, ...], ...],
    trans: tuple[tuple[int, ...], ...],
    arity: int,
    first_index: int,
    stats: dict | None = None,
) -> list[tuple[int, ...]]:
    """Explore the DFS subtree whose first chosen set is ``candidates[first_index]``.

    This is the unit of work the parallel fan-out distributes: the
    serial search is exactly the concatenation of the chunks for
    ``first_index = 0 .. len(candidates) - 1``, so chunked results are
    order- and content-identical to a single DFS.  ``member_labels``
    holds each candidate's member label ids and ``trans`` is the
    closure machine of :func:`closure_machine`.
    """
    return _maximization_dfs(
        candidates,
        member_labels,
        trans,
        arity,
        first_index,
        first_index + 1,
        stats=stats,
    )


# hotpath
def prune_non_maximal_masks(
    configurations: list[tuple[int, ...]], candidate_sets: Iterable[int]
) -> list[tuple[int, ...]]:
    """Mask twin of the reference ``_prune_non_maximal`` (same near-linear
    single-coordinate-enlargement argument, with int-subset tests).

    Membership structures are dicts rather than sets so the hot loop
    allocates nothing set-shaped (RL010); insertion order is irrelevant
    because only key lookups are performed.
    """
    candidates = list(candidate_sets)
    passing = dict.fromkeys(tuple(sorted(sets)) for sets in configurations)
    supersets: dict[int, list[int]] = {
        mask: [other for other in candidates if is_strict_subset(mask, other)]
        for mask in candidates
    }
    keep: list[tuple[int, ...]] = []
    for sets in configurations:
        dominated = False
        unique_positions = {mask: index for index, mask in enumerate(sets)}
        for mask, index in unique_positions.items():
            for bigger in supersets[mask]:
                enlarged = list(sets)
                enlarged[index] = bigger
                if tuple(sorted(enlarged)) in passing:
                    dominated = True
                    break
            if dominated:
                break
        if not dominated:
            keep.append(sets)
    return keep


def maximize_node_constraint_kernel(
    problem: Problem, *, workers: int | None = None, pool: KernelPool | None = None
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.maximize_node_constraint`.

    With a usable ``pool`` (or ``workers > 1``, which builds a
    transient one) the arity-Delta DFS fans out over a
    ``multiprocessing`` pool, chunked by the top-level right-closed-set
    prefix (see :mod:`repro.core.kernel.parallel`); otherwise it runs
    serially with per-node budget checkpoints exactly like the
    reference implementation.
    """
    kernel = KernelProblem.of(problem)
    interner = kernel.interner
    with _prof_section("node_max.right_closed"):
        candidates = kernel.node_right_closed_sets()
    _trace.add("node.right_closed_sets", len(candidates))
    with _prof_section("node_max.prefix_closure"):
        kernel.node_prefix_closure()
    with _prof_section("node_max.machine"):
        _elements, trans = kernel.node_dfs_machine()
    member_labels = tuple(tuple(bits_list(mask)) for mask in candidates)
    delta = kernel.delta
    parallel_requested = pool is not None or (
        workers is not None and workers > 1
    )
    with _prof_section("node_max.dfs"):
        if parallel_requested and len(candidates) > 1:
            from repro.core.kernel.parallel import (
                KernelPool,
                run_chunks_serial,
            )

            payload = (candidates, member_labels, trans, delta)
            count = len(candidates)
            if pool is not None:
                chunks = pool.map_chunks(
                    "node-max", payload, count, phase="node-maximization"
                )
            else:
                with KernelPool(workers) as owned:
                    chunks = owned.map_chunks(
                        "node-max", payload, count, phase="node-maximization"
                    )
            if chunks is None:
                chunks = run_chunks_serial(
                    "node-max", payload, count, phase="node-maximization"
                )
            results = [item for chunk in chunks for item in chunk]
        else:
            results = _maximization_dfs(
                candidates,
                member_labels,
                trans,
                delta,
                0,
                len(candidates),
                budget_phase="node-maximization",
            )
    with _prof_section("node_max.prune"):
        maximal = prune_non_maximal_masks(results, candidates)
    if not maximal:
        raise InvalidProblem(
            "node constraint admits no maximal configuration",
            operator="Rbar",
            alphabet_size=kernel.n,
            delta=delta,
            candidate_sets=len(candidates),
        )
    with _prof_section("node_max.materialize"):
        return Constraint(
            Configuration(interner.labels_of_mask(mask) for mask in sets)
            for sets in maximal
        )


# ---------------------------------------------------------------------------
# Existential steps
# ---------------------------------------------------------------------------

# hotpath
def _existential_dfs(
    member_labels: tuple[tuple[int, ...], ...],
    trans: tuple[tuple[int, ...], ...],
    arity: int,
    lo: int,
    hi: int,
    budget_phase: str | None = None,
    stats: dict | None = None,
) -> list[tuple[int, ...]]:
    """The iterative keep-survivors DFS over the closure machine.

    Same frame shape as :func:`_maximization_dfs`; the grow step ORs
    the surviving transitions instead of failing on the first invalid
    one, and an empty grown frontier (mask ``0``, impossible after a
    successful step since element 0 is never re-entered) prunes the
    branch.  Emits label-*index* tuples; the caller owns the label
    list.
    """
    results: list[tuple[int, ...]] = []
    count = len(member_labels)
    element_count = len(trans[0]) if trans else 1
    element_range = range(element_count)
    # Same lazy per-label image memo as the maximization driver, minus
    # the validity masks: a label that cannot extend from an element
    # simply contributes no bit, and a branch dies only when the whole
    # grown frontier comes out empty.
    label_image: dict[int, list[int]] = {}
    rows: list[list[int] | None] = [None] * count
    grow_calls = 0
    if budget_phase is not None:
        _budget.check_configurations(0, phase=budget_phase, depth=0)
    chosen: list[int] = []
    stack: list[list] = [[lo, hi, 1, None]]
    while stack:
        frame = stack[-1]
        cursor = frame[0]
        if cursor == frame[1]:
            stack.pop()
            if chosen:
                chosen.pop()
            continue
        frame[0] = cursor + 1
        grow_calls += 1
        frontier = frame[2]
        row = rows[cursor]
        if row is None:
            images: list[list[int]] = []
            for label_id in member_labels[cursor]:
                image = label_image.get(label_id)
                if image is None:
                    transitions = trans[label_id]
                    image = [
                        (1 << transitions[element])
                        if transitions[element] >= 0
                        else 0
                        for element in element_range
                    ]
                    label_image[label_id] = image
                images.append(image)
            row = list(images[0])
            for image in images[1:]:
                row = [left | right for left, right in zip(row, image)]
            rows[cursor] = row
        members = frame[3]
        if members is None:
            members = []
            remaining = frontier
            while remaining:
                low_bit = remaining & -remaining
                members.append(low_bit.bit_length() - 1)
                remaining ^= low_bit
            frame[3] = members
        grown = 0
        for element in members:
            grown |= row[element]
        if grown == 0:
            continue
        chosen.append(cursor)
        depth = len(chosen)
        if depth == arity:
            if budget_phase is not None:
                _budget.check_configurations(
                    len(results), phase=budget_phase, depth=depth
                )
            results.append(tuple(chosen))
            chosen.pop()
            continue
        if budget_phase is not None:
            _budget.check_configurations(
                len(results), phase=budget_phase, depth=depth
            )
        stack.append([cursor, count, grown, None])
    if stats is not None:
        stats["grow_calls"] = stats.get("grow_calls", 0) + grow_calls
    return results


# hotpath
def search_existential_chunk(
    member_labels: tuple[tuple[int, ...], ...],
    trans: tuple[tuple[int, ...], ...],
    arity: int,
    first_index: int,
    stats: dict | None = None,
) -> list[tuple[int, ...]]:
    """Explore the existential DFS subtree rooted at label ``first_index``.

    Returns label-*index* tuples (the caller owns the label list); the
    union over ``first_index = 0 .. len(member_labels) - 1`` is exactly
    the serial search's configuration set, since the serial DFS chooses
    its first label in the same index order.
    """
    return _existential_dfs(
        member_labels,
        trans,
        arity,
        first_index,
        first_index + 1,
        stats=stats,
    )


def existential_constraint_kernel(
    old_constraint: Constraint,
    new_labels: Iterable[frozenset],
    arity: int,
    *,
    pool: KernelPool | None = None,
) -> Constraint:
    """Kernel twin of :func:`repro.core.round_elimination.existential_constraint`.

    With a usable ``pool`` the DFS fans out chunked by the first chosen
    label; the set union of the chunks equals the serial result.
    """
    with _prof_section("exists.closure"):
        labels = sorted(set(new_labels), key=_set_sort_key)
        base: set[Hashable] = set(old_constraint.labels_used())
        for label_set in labels:
            base |= label_set
        interner = LabelInterner(base)
        shift = max(arity, old_constraint.arity).bit_length()
        member_labels = tuple(
            tuple(sorted(interner.id_of(member) for member in label_set))
            for label_set in labels
        )
        closure: set[int] = set()
        checked = 0
        for configuration in old_constraint.configurations:
            items = interner.ids_of(configuration.items)
            for size in range(len(items) + 1):
                # Stride the probe: small closures stay silent, runaway
                # growth is caught within 64 packed prefixes.
                if len(closure) - checked >= 64:
                    checked = len(closure)
                    _budget.check_configurations(
                        len(closure), phase="existential"
                    )
                for combo in itertools.combinations(items, size):
                    closure.add(pack_ids(combo, shift))
        _elements, trans = closure_machine(closure, shift, len(interner))
    with _prof_section("exists.dfs"):
        if pool is not None and len(labels) > 1:
            from repro.core.kernel.parallel import run_chunks_serial

            payload = (member_labels, trans, arity)
            chunks = pool.map_chunks(
                "exists", payload, len(labels), phase="existential"
            )
            if chunks is None:
                chunks = run_chunks_serial(
                    "exists", payload, len(labels), phase="existential"
                )
            index_tuples = [ids for chunk in chunks for ids in chunk]
        else:
            index_tuples = _existential_dfs(
                member_labels,
                trans,
                arity,
                0,
                len(labels),
                budget_phase="existential",
            )
    with _prof_section("exists.materialize"):
        results: set[Configuration] = {
            Configuration(labels[index] for index in ids)
            for ids in index_tuples
        }
    if not results:
        raise InvalidProblem(
            "existential step produced an empty constraint",
            arity=arity,
            alphabet_size=len(labels),
            old_configurations=len(old_constraint),
        )
    return Constraint(results)


# ---------------------------------------------------------------------------
# The R / Rbar operators
# ---------------------------------------------------------------------------

def kernel_R(problem: Problem, *, pool: KernelPool | None = None) -> Problem:
    """Kernel twin of :func:`repro.core.round_elimination.R`.

    A usable ``pool`` (a :class:`~repro.core.kernel.parallel.KernelPool`)
    fans out both the edge-side pairing and the existential DFS.
    """
    with _trace.span(
        "op.R", engine="kernel", problem=problem.name, delta=problem.delta
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        edge_constraint = maximize_edge_constraint_kernel(problem, pool=pool)
        sigma = sorted(edge_constraint.labels_used(), key=_set_sort_key)
        _budget.check_alphabet(
            len(sigma), operator="R", alphabet_before=len(problem.alphabet)
        )
        node_constraint = existential_constraint_kernel(
            problem.node_constraint, sigma, problem.delta, pool=pool
        )
        span.add("labels.out", len(sigma))
        span.add("node.configs.out", len(node_constraint))
        span.add("edge.configs.out", len(edge_constraint))
    name = f"R({problem.name})" if problem.name else "R"
    return Problem(Alphabet(sigma), node_constraint, edge_constraint, name=name)


def kernel_Rbar(
    problem: Problem, *, workers: int | None = None, pool: KernelPool | None = None
) -> Problem:
    """Kernel twin of :func:`repro.core.round_elimination.Rbar`.

    ``workers > 1`` without a ``pool`` builds a transient
    :class:`~repro.core.kernel.parallel.KernelPool` shared by the
    maximization and existential steps of this one call; a caller that
    already owns a pool (``speedup``) passes it in instead.
    """
    if pool is None and workers is not None and workers > 1:
        from repro.core.kernel.parallel import KernelPool

        with KernelPool(workers) as owned:
            return kernel_Rbar(problem, workers=workers, pool=owned)
    with _trace.span(
        "op.Rbar", engine="kernel", problem=problem.name, delta=problem.delta
    ) as span:
        span.add("labels.in", len(problem.alphabet))
        node_constraint = maximize_node_constraint_kernel(
            problem, workers=workers, pool=pool
        )
        sigma = sorted(node_constraint.labels_used(), key=_set_sort_key)
        _budget.check_alphabet(
            len(sigma), operator="Rbar", alphabet_before=len(problem.alphabet)
        )
        edge_constraint = existential_constraint_kernel(
            problem.edge_constraint, sigma, 2, pool=pool
        )
        span.add("labels.out", len(sigma))
        span.add("node.configs.out", len(node_constraint))
        span.add("edge.configs.out", len(edge_constraint))
    name = f"Rbar({problem.name})" if problem.name else "Rbar"
    return Problem(Alphabet(sigma), node_constraint, edge_constraint, name=name)


# ---------------------------------------------------------------------------
# Relaxation and relabeling fast paths
# ---------------------------------------------------------------------------

def _mask_match(source: tuple[int, ...], target: tuple[int, ...]) -> bool:
    """Kuhn matching of source positions into target supersets, on masks."""
    assignment: dict[int, int] = {}

    def try_assign(source_index: int, visited: set[int]) -> bool:
        small = source[source_index]
        for target_index, big in enumerate(target):
            if target_index in visited or not is_subset(small, big):
                continue
            visited.add(target_index)
            if target_index not in assignment or try_assign(
                assignment[target_index], visited
            ):
                assignment[target_index] = source_index
                return True
        return False

    return all(
        try_assign(source_index, set()) for source_index in range(len(source))
    )


def all_relax_into_kernel(
    configurations: Iterable[Configuration], targets: Iterable[Configuration]
) -> bool:
    """Kernel twin of :func:`repro.core.relaxation.all_relax_into`.

    Interns the member labels of every set label once, so the pointwise
    subset tests of Definition 7 become int comparisons.
    """
    configuration_list = list(configurations)
    target_list = list(targets)
    base: set[Hashable] = set()
    for configuration in itertools.chain(configuration_list, target_list):
        for label_set in configuration.items:
            base |= label_set
    interner = LabelInterner(base)

    def as_masks(configuration: Configuration) -> tuple[int, ...]:
        return tuple(interner.mask_of(label_set) for label_set in configuration.items)

    targets_by_arity: dict[int, list[tuple[int, ...]]] = {}
    for target in target_list:
        targets_by_arity.setdefault(target.arity, []).append(as_masks(target))
    for configuration in configuration_list:
        masks = as_masks(configuration)
        candidates = targets_by_arity.get(configuration.arity, [])
        if not any(_mask_match(masks, candidate) for candidate in candidates):
            return False
    return True


def find_label_relabeling_kernel(source: Problem, target: Problem) -> dict | None:
    """Kernel twin of :func:`repro.core.relaxation.find_label_relabeling`.

    Returns *a* valid relabeling (possibly a different witness than the
    reference search finds, since candidates are tried in interner
    order), or ``None`` exactly when the reference returns ``None``.
    """
    if source.delta != target.delta:
        return None
    source_interner = LabelInterner(source.alphabet)
    target_interner = LabelInterner(target.alphabet)

    def interned_constraint(
        constraint: Constraint, interner: LabelInterner
    ) -> frozenset[frozenset[int]]:
        return frozenset(
            interner.ids_of(configuration.items)
            for configuration in constraint.configurations
        )

    pairs = [
        (
            [
                source_interner.ids_of(configuration.items)
                for configuration in constraint.configurations
            ],
            interned_constraint(target_constraint, target_interner),
        )
        for constraint, target_constraint in (
            (source.node_constraint, target.node_constraint),
            (source.edge_constraint, target.edge_constraint),
        )
    ]
    source_count = len(source_interner)
    target_ids = range(len(target_interner))
    mapping: dict[int, int] = {}

    def consistent_so_far() -> bool:
        assigned = mask_from_ids(mapping)
        for source_configs, target_set in pairs:
            for configuration in source_configs:
                if not is_subset(mask_from_ids(configuration), assigned):
                    continue
                image = tuple(sorted(mapping[label] for label in configuration))
                if image not in target_set:
                    return False
        return True

    def assign(index: int) -> bool:
        _budget.checkpoint(phase="relabeling-search", assigned=index)
        if index == source_count:
            return True
        for candidate in target_ids:
            mapping[index] = candidate
            if consistent_so_far() and assign(index + 1):
                return True
            del mapping[index]
        return False

    if assign(0):
        return {
            source_interner.label_of(source_id): target_interner.label_of(target_id)
            for source_id, target_id in mapping.items()
        }
    return None


# ---------------------------------------------------------------------------
# Zero-round fast paths
# ---------------------------------------------------------------------------

def zero_round_solvable_pn_kernel(problem: Problem) -> bool:
    """Kernel twin of :func:`repro.core.solvability.zero_round_solvable_pn`."""
    return KernelProblem.of(problem).pn_solvable()


def zero_round_solvable_symmetric_kernel(problem: Problem) -> bool:
    """Kernel twin of :func:`repro.core.solvability.zero_round_solvable_symmetric`."""
    return KernelProblem.of(problem).symmetric_solvable()


__all__ = [
    "KernelProblem",
    "maximize_edge_constraint_kernel",
    "maximize_node_constraint_kernel",
    "existential_constraint_kernel",
    "kernel_R",
    "kernel_Rbar",
    "all_relax_into_kernel",
    "find_label_relabeling_kernel",
    "zero_round_solvable_pn_kernel",
    "zero_round_solvable_symmetric_kernel",
    "grow_frontier",
    "grow_frontier_exists",
    "pack_ids",
    "unpack_ids",
    "partner_mask",
    "closure_machine",
    "search_maximization_chunk",
    "search_existential_chunk",
    "edge_pairing_chunk",
    "prune_non_maximal_masks",
]
