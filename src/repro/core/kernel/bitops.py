"""Bitmask primitives for the fast-path kernel.

A label set over an interned alphabet of ``n`` labels is a Python int
with bit ``i`` set iff label ``i`` is a member.  Python ints are
arbitrary-precision, so nothing here caps the alphabet size; all
operations reduce to single int instructions (``&``, ``|``, ``~`` with
an explicit universe mask, ``bit_count``), which is what makes the
kernel representation fast compared to ``frozenset`` algebra.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def bit(index: int) -> int:
    """The mask with only ``index`` set."""
    return 1 << index


def mask_from_ids(ids: Iterable[int]) -> int:
    """OR together the bits named by ``ids``."""
    mask = 0
    for index in ids:
        mask |= 1 << index
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit indices of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_list(mask: int) -> list[int]:
    """The set bit indices of ``mask`` as an eager ascending list.

    The loop twin of :func:`iter_bits` without generator overhead —
    the DFS hot path calls this where it needs the indices more than
    once (generators would have to be re-created per pass).
    """
    bits: list[int] = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return bits


def mask_without_below(mask: int, index: int) -> int:
    """``mask`` with every bit strictly below ``index`` cleared.

    The DFS uses this to restrict a candidate mask to the indices a
    nondecreasing search is still allowed to choose.
    """
    return mask & ~((1 << index) - 1)


def iter_submasks(mask: int) -> Iterator[int]:
    """All submasks of ``mask``, descending, ending with 0.

    The standard ``sub = (sub - 1) & mask`` enumeration: each step is
    two int instructions, visiting every subset of the set exactly
    once (``2**popcount(mask)`` values).
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def popcount(mask: int) -> int:
    """Number of set bits (the cardinality of the label set)."""
    return mask.bit_count()


def is_subset(small: int, big: int) -> bool:
    """Whether every bit of ``small`` is set in ``big``."""
    return small & ~big == 0


def is_strict_subset(small: int, big: int) -> bool:
    """Subset and not equal."""
    return small != big and small & ~big == 0


def universe(n: int) -> int:
    """The full mask over ``n`` labels."""
    return (1 << n) - 1


__all__ = [
    "bit",
    "mask_from_ids",
    "iter_bits",
    "bits_list",
    "mask_without_below",
    "iter_submasks",
    "popcount",
    "is_subset",
    "is_strict_subset",
    "universe",
]
