"""The scenario spec format: a deliberately tiny YAML subset.

A spec is a flat document of ``key: value`` lines with exactly two
nested sections (``params`` and ``chain``), two-space indentation, and
scalars limited to integers, booleans, and bare strings.  Comments
(``#`` lines) and blank lines are accepted on input and never emitted,
so the canonical renderer :func:`render_spec` is a byte-identical
round-trip for files written in canonical form — which all committed
``scenarios/*.scn`` files are, and a seeded property test enforces.

Example::

    name: maximal-matching2-selfreduce
    family: maximal_matching
    params:
      delta: 2
    chain:
      operator: self-reduce
      steps: 2
      expect: bounded
      certified: 3
    policy: pn
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.robustness.errors import InvalidScenario

#: Chain operators a spec may name.
OPERATORS = ("speedup", "self-reduce", "lemma13")

#: Expected chain shapes.
EXPECTATIONS = ("bounded", "fixed-point")

#: Zero-round verification policies (general port-numbering vs the
#: symmetric-port variant of Lemma 12).
POLICIES = ("pn", "symmetric")


@dataclass(frozen=True)
class ScenarioSpec:
    """One resolved scenario spec."""

    name: str
    family: str
    params: dict[str, int]
    operator: str                  #: one of :data:`OPERATORS`
    steps: int                     #: chain steps to run
    expect: str                    #: one of :data:`EXPECTATIONS`
    certified: int                 #: exact certified round count
    policy: str                    #: one of :data:`POLICIES`


def _parse_scalar(value: str, line_number: int, source: str) -> int | bool | str:
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        pass
    if not value:
        raise InvalidScenario(
            "empty scalar value", source=source, line=line_number
        )
    return value


def parse_spec(text: str, source: str = "<string>") -> ScenarioSpec:
    """Parse a spec document; raises :class:`InvalidScenario` on any flaw."""
    top: dict[str, object] = {}
    section: dict[str, object] | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if ":" not in stripped:
            raise InvalidScenario(
                f"expected 'key: value', got {stripped!r}",
                source=source,
                line=line_number,
            )
        key, _, value = stripped.partition(":")
        key = key.strip()
        value = value.strip()
        if raw.startswith("  "):
            if section is None:
                raise InvalidScenario(
                    f"indented line {key!r} outside a section",
                    source=source,
                    line=line_number,
                )
            if key in section:
                raise InvalidScenario(
                    f"duplicate key {key!r}", source=source, line=line_number
                )
            section[key] = _parse_scalar(value, line_number, source)
        else:
            if key in top:
                raise InvalidScenario(
                    f"duplicate key {key!r}", source=source, line=line_number
                )
            if value:
                top[key] = _parse_scalar(value, line_number, source)
                section = None
            else:
                nested: dict[str, object] = {}
                top[key] = nested
                section = nested
    return _resolve(top, source)


def _require(
    mapping: dict[str, Any], key: str, kind: type, source: str
) -> Any:
    if key not in mapping:
        raise InvalidScenario(f"missing key {key!r}", source=source)
    value = mapping[key]
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise InvalidScenario(
            f"key {key!r} must be {kind.__name__}, got {value!r}",
            source=source,
        )
    return value


def _resolve(top: dict[str, object], source: str) -> ScenarioSpec:
    known = {"name", "family", "params", "chain", "policy"}
    unknown = sorted(set(top) - known)
    if unknown:
        raise InvalidScenario(
            f"unknown top-level keys: {unknown}", source=source
        )
    name = _require(top, "name", str, source)
    family = _require(top, "family", str, source)
    params_raw = _require(top, "params", dict, source)
    chain = _require(top, "chain", dict, source)
    policy = _require(top, "policy", str, source)
    params: dict[str, int] = {}
    for key in sorted(params_raw):
        value = params_raw[key]
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidScenario(
                f"param {key!r} must be an integer, got {value!r}",
                source=source,
            )
        params[key] = value
    unknown_chain = sorted(
        set(chain) - {"operator", "steps", "expect", "certified"}
    )
    if unknown_chain:
        raise InvalidScenario(
            f"unknown chain keys: {unknown_chain}", source=source
        )
    operator = _require(chain, "operator", str, source)
    steps = _require(chain, "steps", int, source)
    expect = _require(chain, "expect", str, source)
    certified = _require(chain, "certified", int, source)
    if operator not in OPERATORS:
        raise InvalidScenario(
            f"unknown operator {operator!r} (known: {', '.join(OPERATORS)})",
            source=source,
        )
    if expect not in EXPECTATIONS:
        raise InvalidScenario(
            f"unknown expectation {expect!r} "
            f"(known: {', '.join(EXPECTATIONS)})",
            source=source,
        )
    if policy not in POLICIES:
        raise InvalidScenario(
            f"unknown policy {policy!r} (known: {', '.join(POLICIES)})",
            source=source,
        )
    if steps < 0 or certified < 0:
        raise InvalidScenario(
            "steps and certified must be non-negative",
            source=source,
            steps=steps,
            certified=certified,
        )
    if operator == "lemma13" and expect == "fixed-point":
        raise InvalidScenario(
            "the lemma13 chain is finite by construction and cannot "
            "expect a fixed point",
            source=source,
        )
    return ScenarioSpec(
        name=str(name),
        family=str(family),
        params=params,
        operator=str(operator),
        steps=int(steps),
        expect=str(expect),
        certified=int(certified),
        policy=str(policy),
    )


def render_spec(spec: ScenarioSpec) -> str:
    """The canonical serialization (the byte-identical round-trip form)."""
    lines = [
        f"name: {spec.name}",
        f"family: {spec.family}",
        "params:",
    ]
    lines.extend(f"  {key}: {spec.params[key]}" for key in sorted(spec.params))
    lines.extend(
        [
            "chain:",
            f"  operator: {spec.operator}",
            f"  steps: {spec.steps}",
            f"  expect: {spec.expect}",
            f"  certified: {spec.certified}",
            f"policy: {spec.policy}",
        ]
    )
    return "\n".join(lines) + "\n"


__all__ = [
    "OPERATORS",
    "EXPECTATIONS",
    "POLICIES",
    "ScenarioSpec",
    "parse_spec",
    "render_spec",
]
