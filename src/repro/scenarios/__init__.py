"""Declarative LCL workloads: scenario specs, registry, and runner.

A *scenario* is a small ``.scn`` file under the repo-level
``scenarios/`` directory naming a problem family, its parameters, the
chain operator to iterate (plain ``speedup``, the Khoury-Schild
``self-reduce``, or the paper's ``lemma13`` chain), how many steps to
take, what shape to expect (``bounded`` or ``fixed-point``), the exact
certified round count, and the zero-round verification policy (``pn``
or ``symmetric``).  The loaders resolve a spec into a
:class:`~repro.core.problem.Problem` plus a certified chain run, and
every registered scenario also declares its oracle-corpus entry and
golden case (enforced by lint rule RL009), so new families join the
differential and golden test substrate by registration alone.

* :mod:`repro.scenarios.spec` — the YAML-lite format: parse and the
  byte-identical canonical renderer.
* :mod:`repro.scenarios.registry` — the declaration table and spec
  file resolution.
* :mod:`repro.scenarios.runner` — family builders and the chain
  runner with expectation checking.
"""

from repro.scenarios.registry import (
    SCENARIO_DIR,
    SCENARIOS,
    ScenarioDecl,
    describe_registry,
    find_scenario,
    load_registry,
    load_spec,
    spec_path,
)
from repro.scenarios.runner import (
    FAMILY_BUILDERS,
    ChainOutcome,
    ScenarioRun,
    build_problem,
    run_problem_chain,
    run_scenario,
)
from repro.scenarios.spec import ScenarioSpec, parse_spec, render_spec

__all__ = [
    "ScenarioSpec",
    "parse_spec",
    "render_spec",
    "ScenarioDecl",
    "SCENARIOS",
    "SCENARIO_DIR",
    "spec_path",
    "load_spec",
    "load_registry",
    "find_scenario",
    "describe_registry",
    "FAMILY_BUILDERS",
    "ChainOutcome",
    "ScenarioRun",
    "build_problem",
    "run_problem_chain",
    "run_scenario",
]
