"""Resolve scenario specs into problems and certified chain runs.

:func:`build_problem` maps a spec's ``family`` + ``params`` onto the
concrete builders of :mod:`repro.problems`; :func:`run_scenario` then
iterates the spec's chain operator — plain ``speedup``, the
Khoury-Schild ``self-reduce``, or the paper's ``lemma13`` chain — and
checks every expectation the spec pins: the number of steps actually
taken, the exact certified round count under the spec's zero-round
policy, and whether an isomorphism fixed point was (or was not)
reached.  Failures are collected as human-readable strings rather than
raised, so callers (tests, the CLI, the benchmark gate) can report all
of them at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.problem import Problem
from repro.core.round_elimination import speedup
from repro.core.self_reduction import self_reduction_chain
from repro.core.solvability import (
    zero_round_solvable_pn,
    zero_round_solvable_symmetric,
)
from repro.problems import (
    coloring_problem,
    family_problem,
    maximal_matching_problem,
    mis_problem,
    perfect_matching_problem,
    ruling_set_problem,
    sinkless_orientation_problem,
)
from repro.robustness.errors import InvalidProblem, InvalidScenario
from repro.scenarios.spec import POLICIES, ScenarioSpec


def _family_chain_start(delta: int, x: int = 0, a: int | None = None) -> Problem:
    """Pi_Delta(a, x) with ``a`` defaulting to Delta (the chain start)."""
    return family_problem(delta, delta if a is None else a, x)


#: Spec ``family`` values and the builders that realize them.  Builders
#: take the spec's ``params`` as keyword arguments.
FAMILY_BUILDERS: dict[str, Callable[..., Problem]] = {
    "mis": mis_problem,
    "ruling_set": ruling_set_problem,
    "maximal_matching": maximal_matching_problem,
    "sinkless_orientation": sinkless_orientation_problem,
    "perfect_matching": perfect_matching_problem,
    "coloring": coloring_problem,
    "family": _family_chain_start,
}


def build_problem(spec: ScenarioSpec) -> Problem:
    """The base :class:`Problem` a spec describes."""
    builder = FAMILY_BUILDERS.get(spec.family)
    if builder is None:
        raise InvalidScenario(
            f"unknown problem family {spec.family!r} "
            f"(known: {', '.join(sorted(FAMILY_BUILDERS))})",
            scenario=spec.name,
        )
    try:
        return builder(**spec.params)
    except TypeError as error:
        raise InvalidScenario(
            f"family {spec.family!r} rejects params {spec.params!r}: {error}",
            scenario=spec.name,
        ) from error
    except InvalidProblem as error:
        raise InvalidScenario(
            f"family {spec.family!r} rejects params {spec.params!r}: "
            f"{error.message}",
            scenario=spec.name,
        ) from error


@dataclass
class ScenarioRun:
    """The outcome of one scenario: the chain and every expectation check."""

    spec: ScenarioSpec
    problems: list[Problem]        #: chain iterates, base problem first
    reached_fixed_point: bool
    certified_rounds: int
    failures: list[str]            #: empty iff every expectation held

    @property
    def ok(self) -> bool:
        """Whether every expectation of the spec held."""
        return not self.failures

    @property
    def steps(self) -> int:
        """Chain steps actually performed."""
        return len(self.problems) - 1


def _zero_round_solvable(policy: str) -> Callable[..., bool]:
    if policy == "pn":
        return zero_round_solvable_pn
    return zero_round_solvable_symmetric


@dataclass(frozen=True)
class ChainOutcome:
    """What iterating a chain operator on one problem produced."""

    problems: list[Problem]        #: chain iterates, base problem first
    reached_fixed_point: bool
    certified_rounds: int          #: leading zero-round-unsolvable iterates

    @property
    def steps(self) -> int:
        """Chain steps actually performed."""
        return len(self.problems) - 1


def run_problem_chain(
    problem: Problem,
    *,
    operator: str,
    steps: int,
    policy: str = "pn",
    use_kernel: bool = False,
    workers: int | None = None,
) -> ChainOutcome:
    """Iterate a chain ``operator`` on an arbitrary base problem.

    This is the spec-independent core of :func:`run_scenario`, and the
    execution path of inline-problem service jobs
    (:mod:`repro.service.orchestrator`): ``"self-reduce"`` runs the
    Khoury-Schild chain, ``"speedup"`` iterates plain ``Rbar(R(.))``
    with a fixed-point stop, and either way the leading zero-round
    unsolvable iterates under ``policy`` are counted as certified
    rounds.  The ``"lemma13"`` operator is *not* accepted here — it is
    parameterized by ``(delta, x)``, not by a problem, so only spec
    runs can request it.
    """
    if policy not in POLICIES:
        raise InvalidScenario(
            f"unknown policy {policy!r} (known: {', '.join(POLICIES)})"
        )
    if steps < 0:
        raise InvalidScenario("chain steps must be non-negative", steps=steps)
    if operator == "self-reduce":
        chain = self_reduction_chain(
            problem,
            steps,
            policy=policy,
            use_kernel=use_kernel,
            workers=workers,
        )
        return ChainOutcome(
            problems=chain.problems,
            reached_fixed_point=chain.reached_fixed_point,
            certified_rounds=chain.certified_rounds,
        )
    if operator != "speedup":
        raise InvalidScenario(
            f"operator {operator!r} cannot run on an inline problem "
            "(known: speedup, self-reduce)",
            operator=operator,
        )
    current = problem
    problems = [current]
    reached_fixed_point = False
    for _ in range(steps):
        result = speedup(current, use_kernel=use_kernel, workers=workers)
        problems.append(result.problem)
        if result.problem.is_isomorphic(current):
            reached_fixed_point = True
            break
        current = result.problem
    solvable = _zero_round_solvable(policy)
    certified = 0
    for iterate in problems:
        if solvable(iterate, use_kernel=use_kernel):
            break
        certified += 1
    return ChainOutcome(
        problems=problems,
        reached_fixed_point=reached_fixed_point,
        certified_rounds=certified,
    )


def run_scenario(
    spec: ScenarioSpec,
    *,
    use_kernel: bool = False,
    workers: int | None = None,
) -> ScenarioRun:
    """Run a spec's chain and check every expectation it pins.

    ``use_kernel`` / ``workers`` select the engine exactly as in the
    underlying operators; the run outcome must be identical either way
    (the differential tests enforce this).
    """
    problems: list[Problem]
    reached_fixed_point = False
    certified: int
    if spec.operator in ("self-reduce", "speedup"):
        outcome = run_problem_chain(
            build_problem(spec),
            operator=spec.operator,
            steps=spec.steps,
            policy=spec.policy,
            use_kernel=use_kernel,
            workers=workers,
        )
        problems = outcome.problems
        reached_fixed_point = outcome.reached_fixed_point
        certified = outcome.certified_rounds
    else:  # lemma13 (parse_spec admits no other operator)
        from repro.lowerbound.sequence import run_chain

        params = dict(spec.params)
        delta = params.pop("delta", None)
        x = params.pop("x", 0)
        if delta is None or params:
            raise InvalidScenario(
                "the lemma13 operator takes exactly the params delta and x",
                scenario=spec.name,
                params=spec.params,
            )
        result = run_chain(delta, x, use_kernel=use_kernel)
        problems = [step.problem for step in result.chain]
        certified = result.certified_rounds

    failures: list[str] = []
    steps_taken = len(problems) - 1
    if steps_taken != spec.steps:
        failures.append(
            f"expected {spec.steps} chain steps, performed {steps_taken}"
        )
    if certified != spec.certified:
        failures.append(
            f"expected certified={spec.certified} rounds under policy "
            f"{spec.policy!r}, got {certified}"
        )
    if spec.expect == "fixed-point" and not reached_fixed_point:
        failures.append("expected an isomorphism fixed point, none reached")
    if spec.expect == "bounded" and reached_fixed_point:
        failures.append("expected a bounded chain, hit a fixed point")
    return ScenarioRun(
        spec=spec,
        problems=problems,
        reached_fixed_point=reached_fixed_point,
        certified_rounds=certified,
        failures=failures,
    )


__all__ = [
    "FAMILY_BUILDERS",
    "build_problem",
    "ChainOutcome",
    "run_problem_chain",
    "ScenarioRun",
    "run_scenario",
]
