"""The scenario registry: every workload the repo certifies.

Each :class:`ScenarioDecl` names one ``.scn`` file under the repo-level
``scenarios/`` directory together with the test substrate the scenario
is wired into: the oracle-corpus entry its base problem lives under and
the golden trace case that pins its operator run.  Lint rule RL009
checks both declarations against :mod:`tests.oracle` and
``tools/regen_golden.py``, so a scenario cannot be registered without
also joining the differential and golden gates.

A declaration may point at an *existing* classic corpus entry instead
of introducing a new one — the lemma13 chain scenario does this, since
its Delta=16 base problem is far too expensive for the differential
speedup corpus, which already covers the same family at small Delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.robustness.errors import InvalidScenario
from repro.scenarios.spec import ScenarioSpec, parse_spec

#: Repo-level directory holding the ``.scn`` spec files.
SCENARIO_DIR = Path(__file__).resolve().parents[3] / "scenarios"


@dataclass(frozen=True)
class ScenarioDecl:
    """One registered scenario and its test-substrate wiring."""

    spec: str             #: filename under :data:`SCENARIO_DIR`
    oracle_corpus: str    #: oracle-corpus entry covering the base problem
    golden: str           #: golden trace case pinning the operator run
    quick: bool = False   #: included in the quick benchmark gate


#: The registry.  Order is presentation order in CLIs and reports.
SCENARIOS: tuple[ScenarioDecl, ...] = (
    ScenarioDecl(
        spec="mis3_speedup.scn",
        oracle_corpus="mis3",
        golden="mis3_speedup",
    ),
    ScenarioDecl(
        spec="sinkless_orientation3_selfreduce.scn",
        oracle_corpus="sinkless_orientation3",
        golden="sinkless_orientation3_selfreduce",
    ),
    ScenarioDecl(
        spec="maximal_matching2_selfreduce.scn",
        oracle_corpus="maximal_matching2",
        golden="maximal_matching2_selfreduce",
        quick=True,
    ),
    ScenarioDecl(
        spec="ruling_set2_2_selfreduce.scn",
        oracle_corpus="ruling_set2_2",
        golden="ruling_set2_2_selfreduce",
    ),
    ScenarioDecl(
        spec="family16_lemma13.scn",
        oracle_corpus="family431",
        golden="family320_speedup",
    ),
)


def spec_path(decl: ScenarioDecl) -> Path:
    """Absolute path of a declaration's ``.scn`` file."""
    return SCENARIO_DIR / decl.spec


def load_spec(decl: ScenarioDecl) -> ScenarioSpec:
    """Read and parse a declaration's spec file."""
    path = spec_path(decl)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise InvalidScenario(
            f"cannot read scenario spec: {error}", spec=decl.spec
        ) from error
    return parse_spec(text, source=str(path))


def load_registry() -> list[tuple[ScenarioDecl, ScenarioSpec]]:
    """All registered scenarios with their parsed specs, registry order."""
    return [(decl, load_spec(decl)) for decl in SCENARIOS]


def describe_registry() -> list[dict]:
    """One JSON-safe summary row per registered scenario, registry order.

    This is the payload of the service's ``GET /v1/scenarios`` endpoint
    and the data behind the CLI ``list`` commands: the spec's identity
    and chain shape plus whether the scenario sits in the quick
    benchmark gate.
    """
    return [
        {
            "name": spec.name,
            "family": spec.family,
            "params": dict(spec.params),
            "operator": spec.operator,
            "steps": spec.steps,
            "expect": spec.expect,
            "certified": spec.certified,
            "policy": spec.policy,
            "quick": decl.quick,
        }
        for decl, spec in load_registry()
    ]


def find_scenario(name: str) -> tuple[ScenarioDecl, ScenarioSpec]:
    """Look a scenario up by its spec ``name`` field."""
    for decl, spec in load_registry():
        if spec.name == name:
            return decl, spec
    known = ", ".join(spec.name for _, spec in load_registry())
    raise InvalidScenario(
        f"unknown scenario {name!r} (registered: {known})"
    )


__all__ = [
    "SCENARIO_DIR",
    "SCENARIOS",
    "ScenarioDecl",
    "spec_path",
    "load_spec",
    "load_registry",
    "describe_registry",
    "find_scenario",
]
