"""Entry point for ``python -m repro.analysis``."""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
