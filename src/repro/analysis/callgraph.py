"""Whole-program module discovery and call-graph construction.

Unlike :mod:`repro.lint` (strictly per-file AST passes), this module
parses the entire ``src/repro`` tree *once* and links it: every
function and method gets a module-qualified node
(``repro.core.kernel.engine._maximization_dfs``), and every call site
that can be resolved statically becomes an edge.  Resolution is
deliberately conservative and documented (DESIGN.md, "Whole-program
analysis"); what it handles:

* plain calls to same-module functions and ``from``-imported names;
* ``module.attr(...)`` through ``import``/``from`` aliases, including
  dotted chains (``a.b.c.f()``);
* ``self.method(...)`` / ``cls.method(...)`` with a base-class walk
  over classes defined in the scanned tree;
* ``Class.method(...)`` and ``Class(...)`` (an ``__init__`` edge);
* local-variable receivers via light type propagation: parameter and
  variable annotations, ``x = ClassName(...)`` constructor results,
  and ``x = f(...)`` where ``f``'s return annotation names a class
  (``ShardScheduler | None`` unwraps to ``ShardScheduler``);
* ``self.attr.method(...)`` where ``self.attr`` carries a class type
  from an annotated assignment;
* synthetic edges for indirect control flow the detectors must see
  through: functions passed as ``target=`` to ``Thread``/``Process``
  (the target is marked a thread root when it is a ``Thread``),
  bare references to known functions (registry dicts, callbacks), and
  :class:`~repro.core.kernel.parallel.KernelPool` dispatch — a
  ``map_chunks``/``run_chunks_serial``/``run(kind, ...)`` call whose
  first argument is a chunk-kind string constant gets an edge to that
  kind's chunk runner (``"node-max"`` →
  ``search_maximization_chunk``, and so on).

Everything else (duck-typed receivers, attributes of call results,
``**kwargs`` dispatch) stays unresolved and is surfaced per function
so ``tools/callgraph_report.py`` can audit detector blind spots.

Module names are derived from the file's path *parts* (everything
after the last ``repro`` path component), exactly like the linter's
scope rules — so a fixture tree mirroring the repository layout
(``tests/fixtures/analysis/.../src/repro/core/...``) is analyzed
identically to the real one.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.robustness.errors import ReproError

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = ("lint_fixtures", "fixtures", "golden", "__pycache__")

#: ``KernelPool`` dispatch: chunk-kind string -> chunk-runner simple name.
KERNEL_DISPATCH_KINDS = {
    "node-max": "search_maximization_chunk",
    "exists": "search_existential_chunk",
    "edge-pair": "edge_pairing_chunk",
}

#: Attribute/function names whose first string argument is a chunk kind.
_DISPATCH_CALLEES = ("map_chunks", "run_chunks_serial", "run_shard_serial", "run")

#: Constructors whose ``target=`` argument is a synthetic callee.
_TARGET_CONSTRUCTORS = ("Thread", "Process")


class AnalysisError(ReproError):
    """A scanned tree that cannot be analyzed (I/O or syntax failure)."""


@dataclass
class FunctionInfo:
    """One function or method node of the call graph."""

    qualname: str
    module: str
    name: str
    cls: str | None
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualnames of ``def``s nested directly inside this one.
    nested: list[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and attribute types."""

    qualname: str
    module: str
    name: str
    bases: list[str]
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> class qualname, from annotated assignments.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.attr = threading.Condition(self.other)`` aliases.
    lock_aliases: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local alias -> module dotted name (``import a.b as z``).
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified value (``from a.b import f``).
    import_values: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level function simple name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: caller, callee, call-site line, edge kind.

    ``kind`` is ``"call"`` for a resolved call expression,
    ``"ref"`` for a bare function reference (may-call), ``"target"``
    for a ``Thread``/``Process`` target, ``"dispatch"`` for a
    synthetic ``KernelPool`` chunk-kind edge, and ``"nested"`` for the
    implicit edge from a function to a ``def`` nested inside it.
    """

    caller: str
    callee: str
    line: int
    kind: str


@dataclass
class CallGraph:
    """The linked program: nodes, edges, and reachability helpers."""

    modules: dict[str, ModuleInfo]
    functions: dict[str, FunctionInfo]
    edges: list[CallEdge]
    #: Functions passed as ``target=`` to ``threading.Thread``.
    thread_roots: set[str]
    #: caller qualname -> unresolved call descriptions (audit surface).
    unresolved: dict[str, list[str]]

    def __post_init__(self) -> None:
        self._out: dict[str, list[CallEdge]] = {}
        for edge in self.edges:
            self._out.setdefault(edge.caller, []).append(edge)

    def callees(self, qualname: str) -> list[CallEdge]:
        """The outgoing edges of one function, in call-site order."""
        return sorted(
            self._out.get(qualname, []), key=lambda e: (e.line, e.callee)
        )

    def reachable(self, roots: list[str] | set[str]) -> set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self._out.get(current, ()):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def call_chain(self, start: str, goal: str) -> list[str] | None:
        """A shortest ``start -> ... -> goal`` qualname chain, or ``None``."""
        if start == goal:
            return [start]
        parents: dict[str, str] = {start: start}
        queue = [start]
        while queue:
            nxt: list[str] = []
            for current in queue:
                for edge in self.callees(current):
                    if edge.callee in parents:
                        continue
                    parents[edge.callee] = current
                    if edge.callee == goal:
                        chain = [goal]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(edge.callee)
            queue = nxt
        return None


# ---------------------------------------------------------------------------
# Discovery and module naming
# ---------------------------------------------------------------------------

def discover(paths: list[str]) -> tuple[list[str], list[str]]:
    """Expand files/directories into python files; mirrors the linter.

    Returns ``(files, missing)``; directories are walked in sorted
    order, with fixture/golden/hidden directories pruned.
    """
    files: list[str] = []
    missing: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, directories, names in os.walk(path):
                directories[:] = sorted(
                    name
                    for name in directories
                    if name not in _SKIPPED_DIRS and not name.startswith(".")
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            missing.append(path)
    return files, missing


def module_name_of(path: str) -> str | None:
    """The dotted module name of ``path``, or ``None`` outside ``repro``.

    Derived from path parts after the *last* ``repro`` component, so
    fixture trees that mirror the layout resolve to the same namespace
    as the real tree.
    """
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")
    inner = parts[index:]
    stem = inner[-1]
    if not stem.endswith(".py"):
        return None
    stem = stem[: -len(".py")]
    packages = inner[:-1]
    if stem == "__init__":
        return ".".join(packages)
    return ".".join(packages + [stem])


# ---------------------------------------------------------------------------
# Pass 1: collect definitions and import tables
# ---------------------------------------------------------------------------

def _annotation_class(annotation: ast.expr | None) -> str | None:
    """The class simple/dotted name an annotation resolves to, if any.

    Unwraps ``X | None``, ``Optional[X]``, and string annotations;
    returns the textual name (resolved against import tables later).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_class(annotation.left)
        if left is not None:
            return left
        return _annotation_class(annotation.right)
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            inner = annotation.slice
            return _annotation_class(inner)
        return None
    if isinstance(annotation, ast.Name):
        return None if annotation.id == "None" else annotation.id
    if isinstance(annotation, ast.Attribute):
        chain = _attribute_chain(annotation)
        return ".".join(chain) if chain else None
    return None


def _attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``, or ``None`` for other shapes."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _collect_module(path: str, name: str) -> ModuleInfo:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise AnalysisError(
            "cannot read source file", path=path, cause=str(error)
        ) from error
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise AnalysisError(
            "cannot parse source file",
            path=path,
            line=error.lineno,
            cause=error.msg,
        ) from error
    module = ModuleInfo(name=name, path=path, tree=tree, source=source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.import_modules[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # ``from . import x`` resolves against the enclosing
                # package: a plain module drops ``level`` trailing parts,
                # an ``__init__`` module drops one fewer (the package
                # itself is level 1).
                parts = name.split(".")
                keep = len(parts) - node.level + (1 if _is_package(path) else 0)
                package = parts[: max(keep, 0)]
                base = ".".join(package + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.import_values[bound] = f"{base}.{alias.name}" if base else alias.name
    return module


def _is_package(path: str) -> bool:
    return os.path.basename(path) == "__init__.py"


def _collect_functions(
    module: ModuleInfo,
    functions: dict[str, FunctionInfo],
    classes: dict[str, ClassInfo],
) -> None:
    """Register every function/method/nested def of one module."""

    def visit_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: str,
        cls: str | None,
    ) -> str:
        qualname = f"{owner}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            cls=cls,
            path=module.path,
            lineno=node.lineno,
            node=node,
        )
        functions[qualname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.nested.append(visit_function(child, qualname, cls))
        return qualname

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = visit_function(
                node, module.name, None
            )
        elif isinstance(node, ast.ClassDef):
            cls_qualname = f"{module.name}.{node.name}"
            info = ClassInfo(
                qualname=cls_qualname,
                module=module.name,
                name=node.name,
                bases=[
                    ".".join(chain)
                    for base in node.bases
                    if (chain := _attribute_chain(base)) is not None
                ],
            )
            module.classes[node.name] = info
            classes[cls_qualname] = info
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[member.name] = visit_function(
                        member, cls_qualname, cls_qualname
                    )
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    annotated = _annotation_class(member.annotation)
                    if annotated is not None:
                        info.attr_types[member.target.id] = annotated


# ---------------------------------------------------------------------------
# Pass 2: resolution
# ---------------------------------------------------------------------------

class _Resolver:
    """Shared name-resolution over the collected program."""

    def __init__(
        self,
        modules: dict[str, ModuleInfo],
        functions: dict[str, FunctionInfo],
        classes: dict[str, ClassInfo],
    ) -> None:
        self.modules = modules
        self.functions = functions
        self.classes = classes
        #: chunk-runner simple name -> qualname (unique in the tree).
        self.chunk_runners: dict[str, str] = {}
        for simple in KERNEL_DISPATCH_KINDS.values():
            matches = [
                qualname
                for qualname, info in functions.items()
                if info.name == simple and info.cls is None
            ]
            if len(matches) == 1:
                self.chunk_runners[simple] = matches[0]

    # -- class lookups ---------------------------------------------------

    def resolve_class(self, module: ModuleInfo, name: str) -> ClassInfo | None:
        """A class named ``name`` as seen from ``module``."""
        if name in module.classes:
            return module.classes[name]
        value = module.import_values.get(name)
        if value is not None and value in self.classes:
            return self.classes[value]
        if "." in name:
            # Dotted annotation (``module.Class``) — try the suffix.
            head, _, tail = name.rpartition(".")
            target = module.import_modules.get(head.split(".")[0])
            if target is not None:
                candidate = f"{name.replace(head.split('.')[0], target, 1)}"
                if candidate in self.classes:
                    return self.classes[candidate]
            if name in self.classes:
                return self.classes[name]
        return None

    def method_of(self, cls: ClassInfo, name: str) -> str | None:
        """``cls``'s method ``name``, walking tree-local base classes."""
        seen: set[str] = set()
        queue: list[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def lookup_value(self, module: ModuleInfo, name: str) -> str | None:
        """A module-level function/class value named ``name``."""
        if name in module.functions:
            return module.functions[name]
        value = module.import_values.get(name)
        if value is not None:
            if value in self.functions or value in self.classes:
                return value
            # ``from a.b import c`` where a.b.c is itself a module.
            if value in self.modules:
                return None
        return None

    def module_for_alias(self, module: ModuleInfo, name: str) -> ModuleInfo | None:
        """The module an alias binds, through either import form."""
        target = module.import_modules.get(name)
        if target is not None and target in self.modules:
            return self.modules[target]
        value = module.import_values.get(name)
        if value is not None and value in self.modules:
            return self.modules[value]
        return None

    def resolve_dotted(
        self, module: ModuleInfo, chain: list[str]
    ) -> str | None:
        """Resolve ``a.b.c.f`` to a function/class qualname, if possible."""
        if len(chain) < 2:
            return None
        head, rest = chain[0], chain[1:]
        # Longest module-prefix match through a plain ``import a.b.c``.
        target = module.import_modules.get(head)
        if target is not None:
            for cut in range(len(rest) - 1, -1, -1):
                candidate = ".".join([target] + rest[:cut])
                if candidate not in self.modules:
                    continue
                return self._member_of(self.modules[candidate], rest[cut:])
        inner_module = self.module_for_alias(module, head)
        if inner_module is not None:
            return self._member_of(inner_module, rest)
        return None

    def _member_of(self, module: ModuleInfo, rest: list[str]) -> str | None:
        """``module``'s member named by ``rest`` (value or Class.method)."""
        if len(rest) == 1:
            value = self.lookup_value(module, rest[0])
            if value is not None:
                return value
            if rest[0] in module.classes:
                return module.classes[rest[0]].qualname
            return None
        if len(rest) == 2 and rest[0] in module.classes:
            return self.method_of(module.classes[rest[0]], rest[1])
        return None


def _class_of_value(
    resolver: _Resolver, module: ModuleInfo, node: ast.expr,
    local_types: dict[str, str],
    cls: ClassInfo | None,
) -> ClassInfo | None:
    """The class a value expression evaluates to, best effort."""
    if isinstance(node, ast.Call):
        # Constructor result, or a call whose return annotation names a
        # class.
        target = _resolve_callable(resolver, module, node.func, local_types, cls)
        if target is None:
            return None
        if target in resolver.classes:
            return resolver.classes[target]
        info = resolver.functions.get(target)
        if info is not None:
            annotated = _annotation_class(info.node.returns)
            if annotated is not None:
                owner = resolver.modules.get(info.module)
                if owner is not None:
                    return resolver.resolve_class(owner, annotated)
        return None
    if isinstance(node, ast.Name):
        annotated = local_types.get(node.id)
        if annotated is not None:
            return resolver.resolve_class(module, annotated)
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self" and cls is not None:
            annotated = cls.attr_types.get(node.attr)
            if annotated is not None:
                return resolver.resolve_class(module, annotated)
    return None


def _resolve_callable(
    resolver: _Resolver,
    module: ModuleInfo,
    func: ast.expr,
    local_types: dict[str, str],
    cls: ClassInfo | None,
) -> str | None:
    """The qualname a call's ``func`` expression resolves to, if any."""
    if isinstance(func, ast.Name):
        value = resolver.lookup_value(module, func.id)
        if value is not None:
            return value
        if func.id in module.classes:
            return module.classes[func.id].qualname
        imported = module.import_values.get(func.id)
        if imported is not None and imported in resolver.classes:
            return imported
        return None
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and cls is not None:
                return resolver.method_of(cls, func.attr)
            receiver = resolver.resolve_class(module, base.id)
            if receiver is not None:
                return resolver.method_of(receiver, func.attr)
            inner = resolver.module_for_alias(module, base.id)
            if inner is not None:
                return resolver.lookup_value(inner, func.attr) or (
                    inner.classes[func.attr].qualname
                    if func.attr in inner.classes
                    else None
                )
            annotated = local_types.get(base.id)
            if annotated is not None:
                typed = resolver.resolve_class(module, annotated)
                if typed is not None:
                    return resolver.method_of(typed, func.attr)
            return None
        if isinstance(base, ast.Attribute):
            chain = _attribute_chain(func)
            if chain is not None:
                dotted = resolver.resolve_dotted(module, chain)
                if dotted is not None:
                    return dotted
            # ``self.attr.method()`` via the attribute's declared type.
            if (
                isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and cls is not None
            ):
                annotated = cls.attr_types.get(base.attr)
                if annotated is not None:
                    typed = resolver.resolve_class(module, annotated)
                    if typed is not None:
                        return resolver.method_of(typed, func.attr)
            return None
    return None


def _describe_call(func: ast.expr) -> str:
    chain = _attribute_chain(func)
    if chain is not None:
        return ".".join(chain)
    if isinstance(func, ast.Name):
        return func.id
    return type(func).__name__


def _local_types_of(
    resolver: _Resolver,
    module: ModuleInfo,
    info: FunctionInfo,
    cls: ClassInfo | None,
) -> dict[str, str]:
    """Parameter/local annotation table for one function body."""
    types: dict[str, str] = {}
    arguments = info.node.args
    ordered = (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
    )
    for argument in ordered:
        annotated = _annotation_class(argument.annotation)
        if annotated is not None:
            types[argument.arg] = annotated
    for node in _own_nodes(info.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotated = _annotation_class(node.annotation)
            if annotated is not None:
                types[node.target.id] = annotated
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value_cls = _class_of_value(
                    resolver, module, node.value, types, cls
                )
                if value_cls is not None:
                    types[target.id] = value_cls.name
    return types


def _own_nodes(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """Every AST node of ``function`` excluding nested ``def`` bodies.

    Nested functions are separate graph nodes (linked by a ``nested``
    edge), so their bodies must not contribute facts or edges to the
    enclosing function.  Lambda bodies stay included — they execute in
    the enclosing frame often enough that excluding them would blind
    the detectors.
    """
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _harvest_class_attributes(
    resolver: _Resolver, module: ModuleInfo, info: ClassInfo
) -> None:
    """Fill ``attr_types`` and ``lock_aliases`` from method bodies."""
    for method_qualname in info.methods.values():
        method = resolver.functions.get(method_qualname)
        if method is None:
            continue
        for node in _own_nodes(method.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if annotation is not None:
                annotated = _annotation_class(annotation)
                if annotated is not None:
                    info.attr_types.setdefault(target.attr, annotated)
            if isinstance(value, ast.Call):
                chain = _attribute_chain(value.func)
                called = chain[-1] if chain else None
                if called == "Condition" and value.args:
                    first = value.args[0]
                    if (
                        isinstance(first, ast.Attribute)
                        and isinstance(first.value, ast.Name)
                        and first.value.id == "self"
                    ):
                        info.lock_aliases[target.attr] = first.attr


def build_call_graph(paths: list[str]) -> CallGraph:
    """Parse every module under ``paths`` and link the program.

    Raises :class:`AnalysisError` on unreadable or unparseable input;
    paths that do not exist are reported the same way (the CLI maps
    both to exit 2).
    """
    files, missing = discover(paths)
    if missing:
        raise AnalysisError("no such path", paths=missing)
    modules: dict[str, ModuleInfo] = {}
    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    for path in files:
        name = module_name_of(path)
        if name is None:
            continue
        module = _collect_module(path, name)
        modules[name] = module
    for module in modules.values():
        _collect_functions(module, functions, classes)
    resolver = _Resolver(modules, functions, classes)
    for module in modules.values():
        for info in module.classes.values():
            _harvest_class_attributes(resolver, module, info)

    edges: list[CallEdge] = []
    thread_roots: set[str] = set()
    unresolved: dict[str, list[str]] = {}

    for info in functions.values():
        module = modules[info.module]
        cls = classes.get(info.cls) if info.cls else None
        local_types = _local_types_of(resolver, module, info, cls)
        for nested in info.nested:
            edges.append(
                CallEdge(info.qualname, nested, functions[nested].lineno, "nested")
            )
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Call):
                _link_call(
                    resolver, module, info, cls, local_types, node,
                    edges, thread_roots, unresolved,
                )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                _link_reference(
                    resolver, module, info, node, edges
                )
    graph = CallGraph(
        modules=modules,
        functions=functions,
        edges=edges,
        thread_roots=thread_roots,
        unresolved=unresolved,
    )
    _mark_handler_roots(graph, resolver)
    return graph


#: Base-class names whose ``do_*`` methods run on server threads.
_HANDLER_BASES = ("BaseHTTPRequestHandler",)


def _mark_handler_roots(graph: CallGraph, resolver: _Resolver) -> None:
    """HTTP handler ``do_*`` methods are thread entry points too."""
    for cls in resolver.classes.values():
        if not any(base.split(".")[-1] in _HANDLER_BASES for base in cls.bases):
            continue
        for name, qualname in cls.methods.items():
            if name.startswith("do_"):
                graph.thread_roots.add(qualname)


def _link_call(
    resolver: _Resolver,
    module: ModuleInfo,
    info: FunctionInfo,
    cls: ClassInfo | None,
    local_types: dict[str, str],
    node: ast.Call,
    edges: list[CallEdge],
    thread_roots: set[str],
    unresolved: dict[str, list[str]],
) -> None:
    target = _resolve_callable(resolver, module, node.func, local_types, cls)
    callee_name = _describe_call(node.func)
    simple = callee_name.split(".")[-1]
    if target is not None:
        if target in resolver.classes:
            init = resolver.method_of(resolver.classes[target], "__init__")
            if init is not None:
                edges.append(CallEdge(info.qualname, init, node.lineno, "call"))
        elif target in resolver.functions:
            edges.append(CallEdge(info.qualname, target, node.lineno, "call"))
    elif isinstance(node.func, ast.Attribute) or isinstance(node.func, ast.Name):
        unresolved.setdefault(info.qualname, []).append(
            f"{callee_name} (line {node.lineno})"
        )
    # Thread/Process targets: the passed function runs concurrently.
    if simple in _TARGET_CONSTRUCTORS:
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            resolved = _resolve_callable(
                resolver, module, keyword.value, local_types, cls
            )
            if resolved is not None and resolved in resolver.functions:
                edges.append(
                    CallEdge(info.qualname, resolved, node.lineno, "target")
                )
                if simple == "Thread":
                    thread_roots.add(resolved)
    # KernelPool dispatch: chunk-kind constant -> chunk runner.
    if simple in _DISPATCH_CALLEES and node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            runner = KERNEL_DISPATCH_KINDS.get(first.value)
            if runner is not None:
                qualname = resolver.chunk_runners.get(runner)
                if qualname is not None:
                    edges.append(
                        CallEdge(info.qualname, qualname, node.lineno, "dispatch")
                    )


def _link_reference(
    resolver: _Resolver,
    module: ModuleInfo,
    info: FunctionInfo,
    node: ast.Name,
    edges: list[CallEdge],
) -> None:
    """A bare reference to a known function is a may-call edge."""
    value = resolver.lookup_value(module, node.id)
    if value is not None and value in resolver.functions:
        edges.append(CallEdge(info.qualname, value, node.lineno, "ref"))


__all__ = [
    "AnalysisError",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "KERNEL_DISPATCH_KINDS",
    "ModuleInfo",
    "build_call_graph",
    "discover",
    "module_name_of",
]
