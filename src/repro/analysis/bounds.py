"""Bound expressions, as concrete functions.

Asymptotic statements are turned into evaluable expressions by dropping
the Landau symbols (constant factor 1); all comparisons in the
benchmarks are therefore about *shape* — who wins, by what factor, and
where curves cross — never about absolute constants, matching the
reproduction contract in DESIGN.md.

All logarithms are base 2.  Functions guard their domains (iterated
logs need their argument > 1) by clamping at 1, which only affects
values far outside the asymptotic regime.
"""

from __future__ import annotations

import math


def _log2(value: float) -> float:
    """Base-2 log clamped below at 0 (arguments <= 1 give 0)."""
    return math.log2(value) if value > 1 else 0.0


def log_star(n: float, base: float = 2.0) -> int:
    """The iterated logarithm: steps of log_base until the value <= 1.

    Handles arbitrarily large integers (towers like 2**65536) without
    float overflow by taking the first log through ``bit_length``.
    """
    if n <= 1:
        return 0
    count = 0
    value = n
    while value > 1:
        if isinstance(value, int) and value.bit_length() > 1000:
            value = (value.bit_length() - 1) / math.log2(base)
        else:
            value = math.log(float(value), base)
        count += 1
    return count


# ---------------------------------------------------------------------------
# This paper (Theorem 1 / Corollary 2 shapes; exact constants live in
# repro.lowerbound.lift, where the port-numbering chain length is used)
# ---------------------------------------------------------------------------

def this_paper_deterministic_shape(n: float, delta: float) -> float:
    """Omega(min{log Delta, log_Delta n}) — Theorem 1, deterministic."""
    return min(_log2(delta), _log2(n) / max(_log2(delta), 1.0))


def this_paper_randomized_shape(n: float, delta: float) -> float:
    """Omega(min{log Delta, log_Delta log n}) — Theorem 1, randomized."""
    return min(_log2(delta), _log2(_log2(n)) / max(_log2(delta), 1.0))


# ---------------------------------------------------------------------------
# Prior lower bounds the paper compares against (Sec. 1.1, 1.3)
# ---------------------------------------------------------------------------

def bbo2020_deterministic_lower_bound(n: float, delta: float) -> float:
    """[5] (FOCS'20), MIS on trees, deterministic:
    Omega(min{log Delta / loglog Delta, sqrt(log n / loglog n)})."""
    loglog_delta = max(_log2(_log2(delta)), 1.0)
    loglog_n = max(_log2(_log2(n)), 1.0)
    return min(
        _log2(delta) / loglog_delta,
        math.sqrt(_log2(n) / loglog_n),
    )


def bbo2020_randomized_lower_bound(n: float, delta: float) -> float:
    """[5] (FOCS'20), MIS on trees, randomized:
    Omega(min{log Delta / loglog Delta, sqrt(loglog n / logloglog n)})."""
    loglog_delta = max(_log2(_log2(delta)), 1.0)
    logloglog_n = max(_log2(_log2(_log2(n))), 1.0)
    return min(
        _log2(delta) / loglog_delta,
        math.sqrt(_log2(_log2(n)) / logloglog_n),
    )


def kmw_lower_bound(n: float, delta: float) -> float:
    """Kuhn-Moscibroda-Wattenhofer [31], MIS on general graphs:
    Omega(min{log Delta / loglog Delta, sqrt(log n / loglog n)})."""
    loglog_delta = max(_log2(_log2(delta)), 1.0)
    loglog_n = max(_log2(_log2(n)), 1.0)
    return min(
        _log2(delta) / loglog_delta,
        math.sqrt(_log2(n) / loglog_n),
    )


def balliu2019_lower_bound(n: float, delta: float, randomized: bool = False) -> float:
    """[4] (FOCS'19), MIS on general graphs:
    Omega(min{Delta, log n / loglog n}) det,
    Omega(min{Delta, loglog n / logloglog n}) rand."""
    if randomized:
        numerator = _log2(_log2(n))
        denominator = max(_log2(_log2(_log2(n))), 1.0)
    else:
        numerator = _log2(n)
        denominator = max(_log2(_log2(n)), 1.0)
    return min(delta, numerator / denominator)


def brandt_olivetti_b_matching_bound(
    n: float, delta: float, b: float, randomized: bool = False
) -> float:
    """[15], b-matching in Delta-regular trees (line-graph argument):
    Omega(min{Delta/b, log n / loglog n}) det (loglog n variant rand)."""
    if randomized:
        numerator = _log2(_log2(n))
        denominator = max(_log2(_log2(_log2(n))), 1.0)
    else:
        numerator = _log2(n)
        denominator = max(_log2(_log2(n)), 1.0)
    return min(delta / max(b, 1.0), numerator / denominator)


# ---------------------------------------------------------------------------
# Upper bounds (Sec. 1.1)
# ---------------------------------------------------------------------------

def upper_bound_mis_bek(n: float, delta: float) -> float:
    """Barenboim-Elkin-Kuhn [10]: MIS in O(Delta + log* n)."""
    return delta + log_star(n)


def upper_bound_k_outdegree_ds(n: float, delta: float, k: float) -> float:
    """Sec. 1.1: k-outdegree dominating set in O(Delta/k + log* n)
    via k-arbdefective O(Delta/k)-coloring [9] + color-class sweep."""
    return delta / max(k, 1.0) + log_star(n)


def upper_bound_k_degree_ds(n: float, delta: float, k: float) -> float:
    """Sec. 1.1: k-degree dominating set in
    O(min{Delta, (Delta/k)^2} + log* n) via k-defective coloring [29]."""
    return min(delta, (delta / max(k, 1.0)) ** 2) + log_star(n)


def upper_bound_mis_ghaffari(n: float, delta: float) -> float:
    """Ghaffari [22]: O(log Delta) + 2^O(sqrt(loglog n)) randomized."""
    return _log2(delta) + 2 ** math.sqrt(max(_log2(_log2(n)), 0.0))


def upper_bound_mis_trees_randomized(n: float) -> float:
    """Ghaffari [22] on trees: O(sqrt(log n)) randomized."""
    return math.sqrt(_log2(n))


def upper_bound_mis_trees_deterministic(n: float) -> float:
    """Barenboim-Elkin [7] on trees: O(log n / loglog n) deterministic."""
    return _log2(n) / max(_log2(_log2(n)), 1.0)


# ---------------------------------------------------------------------------
# Crossovers
# ---------------------------------------------------------------------------

def crossover_delta(n: float, randomized: bool = False) -> float:
    """The Delta balancing the two branches of Theorem 1's min.

    Deterministic: log Delta = log_Delta n  =>  Delta = 2^sqrt(log n);
    randomized: Delta = 2^sqrt(loglog n).  This is exactly the choice
    behind Corollary 2.
    """
    inner = _log2(_log2(n)) if randomized else _log2(n)
    return 2 ** math.sqrt(max(inner, 0.0))
