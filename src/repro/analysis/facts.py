"""Per-function fact summaries feeding the interprocedural detectors.

The call graph says *who calls whom*; this module says *what each
function does locally*: set/frozenset allocations (AN001), loops and
direct budget checkpoints (AN002), lock acquisitions and shared-state
writes (AN003), and counter emissions plus the declared schema
(AN004).  Facts are purely lexical — each summary is computed from one
function's own AST nodes (nested ``def`` bodies excluded, exactly as
in the call graph), and the detectors compose them along edges.

Waivers come in two forms, both parsed here:

* ``# analysis: disable=AN001, AN003 -- reason`` on the finding's
  anchor line silences those codes, mirroring the linter's
  ``# reprolint: disable=`` idiom (``all`` is accepted).
* ``# analysis: unbounded-ok(reason)`` on a loop's header line (or
  the line above it) is AN002's explicit per-loop waiver; the reason
  is mandatory and must be non-empty.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, FunctionInfo

#: Budget checkpoint entry points (bare or attribute calls).
CHECKPOINT_FUNCS = (
    "checkpoint",
    "check_alphabet",
    "check_configurations",
    "check_chain_step",
)

_WAIVER_RE = re.compile(
    r"#\s*analysis:\s*disable=(?P<codes>[A-Za-z0-9, ]+?)\s*(?:--\s*(?P<reason>.*))?$"
)
_UNBOUNDED_RE = re.compile(r"#\s*analysis:\s*unbounded-ok\((?P<reason>[^)]*)\)")


@dataclass(frozen=True)
class LoopFacts:
    """One ``for``/``while`` loop inside a function body."""

    line: int
    end_line: int
    has_direct_checkpoint: bool
    waiver: str | None
    kind: str


@dataclass(frozen=True)
class LockSpan:
    """One ``with self.<attr>:`` block, alias-resolved to its lock."""

    lock: str
    line: int
    end_line: int


@dataclass
class FunctionFacts:
    """Everything the detectors need to know about one function."""

    qualname: str
    hotpath: bool = False
    set_allocs: list[tuple[int, str]] = field(default_factory=list)
    checkpoint_lines: list[int] = field(default_factory=list)
    calls_governed: bool = False
    loops: list[LoopFacts] = field(default_factory=list)
    lock_spans: list[LockSpan] = field(default_factory=list)
    self_writes: list[tuple[str, int]] = field(default_factory=list)
    counter_adds: list[tuple[str, int]] = field(default_factory=list)

    def locks_held_at(self, line: int) -> frozenset[str]:
        """The locks lexically held at ``line`` inside this function."""
        return frozenset(
            span.lock
            for span in self.lock_spans
            if span.line <= line <= span.end_line
        )


@dataclass
class ProgramFacts:
    """Per-function facts plus module-level schema and waiver tables."""

    functions: dict[str, FunctionFacts]
    #: counter name -> (path, declaration line) from observability.schema.
    schema: dict[str, tuple[str, int]]
    semantic_counters: set[str]
    #: path -> line -> waived codes ("all" waives everything).
    suppressions: dict[str, dict[int, set[str]]]

    def is_suppressed(self, path: str, line: int, code: str) -> bool:
        table = self.suppressions.get(path, {})
        codes = table.get(line, set())
        return code in codes or "all" in codes


# ---------------------------------------------------------------------------
# Waiver parsing
# ---------------------------------------------------------------------------

def parse_waivers(source: str) -> tuple[dict[int, set[str]], dict[int, str]]:
    """Comment tables of one file: suppressions and unbounded-ok waivers.

    Returns ``(disable, unbounded)``: ``disable`` maps line numbers to
    waived detector codes, ``unbounded`` maps line numbers to the
    (possibly empty) reason text of ``# analysis: unbounded-ok(...)``.
    """
    disable: dict[int, set[str]] = {}
    unbounded: dict[int, str] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return disable, unbounded
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        match = _WAIVER_RE.search(token.string)
        if match is not None:
            codes = {
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            disable.setdefault(line, set()).update(
                code.lower() if code.lower() == "all" else code
                for code in codes
            )
        match = _UNBOUNDED_RE.search(token.string)
        if match is not None:
            unbounded[line] = match.group("reason").strip()
    return disable, unbounded


# ---------------------------------------------------------------------------
# Local fact extraction
# ---------------------------------------------------------------------------

def _is_setish(node: ast.expr) -> str | None:
    """The kind of set/frozenset allocation ``node`` is, if any."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"{node.func.id}() call"
    return None


def _is_checkpoint_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in CHECKPOINT_FUNCS
    if isinstance(func, ast.Attribute):
        return func.attr in CHECKPOINT_FUNCS
    return False


def _is_hotpath(info: FunctionInfo, lines: list[str]) -> bool:
    """Decorator-aware ``# hotpath`` marker detection.

    The marker counts on the ``def`` line itself, or on the line
    directly above the function's first line of source — which for a
    decorated function is its first decorator, not the ``def``.
    """
    def_line = lines[info.lineno - 1] if info.lineno <= len(lines) else ""
    if "# hotpath" in def_line:
        return True
    anchor = min(
        [info.lineno] + [d.lineno for d in info.node.decorator_list]
    )
    if anchor >= 2 and "# hotpath" in lines[anchor - 2]:
        return True
    return False


def _own_nodes(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """``function``'s AST nodes, nested ``def`` subtrees excluded."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _end_line(node: ast.AST) -> int:
    end = getattr(node, "end_lineno", None)
    if end is not None:
        return int(end)
    return int(getattr(node, "lineno", 0))


def _function_facts(
    info: FunctionInfo,
    lines: list[str],
    lock_aliases: dict[str, str],
    cls_name: str | None,
    unbounded: dict[int, str],
) -> FunctionFacts:
    facts = FunctionFacts(qualname=info.qualname)
    facts.hotpath = _is_hotpath(info, lines)
    own = _own_nodes(info.node)
    for node in own:
        kind = _is_setish(node) if isinstance(node, ast.expr) else None
        if kind is not None and isinstance(node, ast.expr):
            facts.set_allocs.append((node.lineno, kind))
        if isinstance(node, ast.Call):
            if _is_checkpoint_call(node):
                facts.checkpoint_lines.append(node.lineno)
            func = node.func
            called = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if called == "governed":
                facts.calls_governed = True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "add"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                facts.counter_adds.append((node.args[0].value, node.lineno))
        elif isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            waiver = unbounded.get(node.lineno)
            if waiver is None and node.lineno >= 2:
                waiver = unbounded.get(node.lineno - 1)
            body_nodes: list[ast.AST] = list(node.body)
            inner_stack = list(node.body)
            while inner_stack:
                inner = inner_stack.pop()
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                body_nodes.append(inner)
                inner_stack.extend(ast.iter_child_nodes(inner))
            direct = any(
                isinstance(inner, ast.Call) and _is_checkpoint_call(inner)
                for inner in body_nodes
            )
            facts.loops.append(
                LoopFacts(
                    line=node.lineno,
                    end_line=_end_line(node),
                    has_direct_checkpoint=direct,
                    waiver=waiver,
                    kind="for" if isinstance(node, (ast.For, ast.AsyncFor)) else "while",
                )
            )
        elif isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and cls_name is not None
                ):
                    attr = lock_aliases.get(expr.attr, expr.attr)
                    facts.lock_spans.append(
                        LockSpan(
                            lock=f"{cls_name}.{attr}",
                            line=node.lineno,
                            end_line=_end_line(node),
                        )
                    )
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    facts.self_writes.append((target.attr, target.lineno))
    return facts


# ---------------------------------------------------------------------------
# Program-level aggregation
# ---------------------------------------------------------------------------

def _schema_tables(
    graph: CallGraph,
) -> tuple[dict[str, tuple[str, int]], set[str]]:
    """Counter declarations parsed from the scanned tree's schema module.

    Parsed from the AST, never imported, so a fixture tree's schema is
    honored exactly like the real one.
    """
    schema: dict[str, tuple[str, int]] = {}
    semantic: set[str] = set()
    for module in graph.modules.values():
        if not module.name.endswith("observability.schema"):
            continue
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id not in ("SEMANTIC_COUNTERS", "TIMING_COUNTERS"):
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List)):
                continue
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    schema[element.value] = (module.path, element.lineno)
                    if target.id == "SEMANTIC_COUNTERS":
                        semantic.add(element.value)
    return schema, semantic


def collect_facts(graph: CallGraph) -> ProgramFacts:
    """Summarize every function of an already-built call graph."""
    functions: dict[str, FunctionFacts] = {}
    suppressions: dict[str, dict[int, set[str]]] = {}
    waiver_cache: dict[str, tuple[dict[int, set[str]], dict[int, str]]] = {}
    line_cache: dict[str, list[str]] = {}
    for module in graph.modules.values():
        waiver_cache[module.path] = parse_waivers(module.source)
        suppressions[module.path] = waiver_cache[module.path][0]
        line_cache[module.path] = module.source.splitlines()
    for info in graph.functions.values():
        module = graph.modules[info.module]
        lock_aliases: dict[str, str] = {}
        cls_name = info.cls
        if cls_name is not None:
            for candidate in module.classes.values():
                if candidate.qualname == cls_name:
                    lock_aliases = candidate.lock_aliases
                    break
        _, unbounded = waiver_cache[module.path]
        functions[info.qualname] = _function_facts(
            info,
            line_cache[module.path],
            lock_aliases,
            cls_name,
            unbounded,
        )
    schema, semantic = _schema_tables(graph)
    return ProgramFacts(
        functions=functions,
        schema=schema,
        semantic_counters=semantic,
        suppressions=suppressions,
    )


__all__ = [
    "CHECKPOINT_FUNCS",
    "FunctionFacts",
    "LockSpan",
    "LoopFacts",
    "ProgramFacts",
    "collect_facts",
    "parse_waivers",
]
