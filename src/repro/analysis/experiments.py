"""Programmatic regeneration of every paper artifact, for EXPERIMENTS.md.

Each ``experiment_*`` function reruns one experiment from the
DESIGN.md index and returns an :class:`ExperimentRecord` holding the
paper's claim, what was measured, and whether the shapes agree.  The
``tools/generate_experiments.py`` script renders all records into
EXPERIMENTS.md, so the document is always reproducible from source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algorithms.cole_vishkin import run_cole_vishkin
from repro.algorithms.ghaffari import run_ghaffari_mis
from repro.algorithms.greedy import greedy_mis
from repro.algorithms.luby import run_luby_mis
from repro.algorithms.sweep import run_kods_sweep, run_mis_sweep
from repro.analysis.bounds import (
    bbo2020_deterministic_lower_bound,
    log_star,
    this_paper_deterministic_shape,
    upper_bound_k_outdegree_ds,
)
from repro.core.diagram import edge_diagram
from repro.core.solvability import (
    randomized_zero_round_failure_bound,
    zero_round_solvable_symmetric,
)
from repro.lowerbound.certificate import build_certificate
from repro.lowerbound.lemma6 import (
    FIGURE5_HASSE_EDGES,
    figure5_diagram,
    verify_lemma6,
)
from repro.lowerbound.lemma8 import verify_lemma8_argument, verify_lemma8_direct
from repro.lowerbound.lemma9 import verify_lemma9
from repro.lowerbound.lift import lower_bound_summary
from repro.lowerbound.sequence import lemma13_chain, sequence_length, verify_chain_arithmetic
from repro.lowerbound.zero_round import UniformStrategy, monte_carlo_zero_round_failure
from repro.problems.family import family_problem
from repro.problems.mis import mis_problem
from repro.sim.generators import (
    complete_bipartite_graph,
    random_tree_bounded_degree,
    truncated_regular_tree,
)
from repro.sim.verifiers import verify_k_outdegree_dominating_set, verify_mis


@dataclass
class ExperimentRecord:
    """One row of EXPERIMENTS.md."""

    experiment_id: str
    paper_claim: str
    measured: str
    agrees: bool
    details: list[str] = field(default_factory=list)


def experiment_fig1() -> ExperimentRecord:
    diagram = edge_diagram(mis_problem(3))
    edges = diagram.hasse_edges()
    return ExperimentRecord(
        experiment_id="FIG1",
        paper_claim="MIS edge diagram: P -> O, M unrelated to both",
        measured=f"computed Hasse edges: {sorted(edges)}",
        agrees=edges == {("P", "O")},
    )


def experiment_fig4() -> ExperimentRecord:
    edges = edge_diagram(family_problem(6, 4, 1)).hasse_edges()
    expected = {("P", "A"), ("A", "O"), ("O", "X"), ("M", "X")}
    return ExperimentRecord(
        experiment_id="FIG4",
        paper_claim="family edge diagram: chain P->A->O->X with M->X",
        measured=f"computed Hasse edges: {sorted(edges)}",
        agrees=edges == expected,
    )


def experiment_fig5_lemma6() -> ExperimentRecord:
    sweep = [(4, 3, 1), (5, 3, 1), (5, 4, 2), (6, 4, 1), (7, 5, 1)]
    matches = [verify_lemma6(*params) for params in sweep]
    diagram_ok = figure5_diagram(6, 4, 1).hasse_edges() == FIGURE5_HASSE_EDGES
    return ExperimentRecord(
        experiment_id="FIG5/LEM6",
        paper_claim=(
            "R(Pi_Delta(a,x)) = the 8-label normal form with edges "
            "XQ, OB, AU, PM; node diagram = Figure 5"
        ),
        measured=(
            f"exact match on {len(sweep)} parameter points; "
            f"Figure 5 diagram match: {diagram_ok}"
        ),
        agrees=all(matches) and diagram_ok,
        details=[f"Pi({d},{a},{x}) -> match" for (d, a, x) in sweep],
    )


def experiment_lemma5() -> ExperimentRecord:
    results = []
    for delta, depth in ((4, 3), (5, 3), (6, 2)):
        graph = truncated_regular_tree(delta, depth)
        coloring = run_cole_vishkin(graph)
        for k in (0, 1, 2):
            sweep = run_kods_sweep(graph, coloring.outputs, 3, k)
            ok = verify_k_outdegree_dominating_set(
                graph, sweep.selected, sweep.orientation, k
            ).ok
            from repro.lowerbound.lemma5 import verify_lemma5

            labeled = verify_lemma5(graph, sweep.selected, sweep.orientation, k, a=2)
            results.append(ok and labeled.ok)
    return ExperimentRecord(
        experiment_id="LEM5",
        paper_claim="a k-ODS yields a Pi_Delta(a, k) solution in 1 round",
        measured=f"{sum(results)}/{len(results)} instance conversions verified",
        agrees=all(results),
    )


def experiment_lemma8() -> ExperimentRecord:
    direct = [verify_lemma8_direct(*p) for p in ((3, 2, 0), (4, 3, 1), (5, 3, 1))]
    argument = [
        verify_lemma8_argument(*p).ok
        for p in ((6, 4, 1), (8, 6, 2), (12, 9, 3), (14, 10, 3))
    ]
    return ExperimentRecord(
        experiment_id="LEM8",
        paper_claim="every node config of Rbar(R(Pi)) relaxes into Pi_rel",
        measured=(
            f"direct Rbar check: {sum(direct)}/{len(direct)} (Delta <= 5); "
            f"paper's case analysis: {sum(argument)}/{len(argument)} (Delta <= 14)"
        ),
        agrees=all(direct) and all(argument),
    )


def experiment_lemma9() -> ExperimentRecord:
    results = []
    for delta, a, x in ((5, 4, 1), (8, 7, 2), (12, 11, 3)):
        graph = complete_bipartite_graph(delta)
        labeling = {}
        for node in range(delta):
            for port in range(delta):
                labeling[(node, port)] = "C" if port >= x else "X"
        for node in range(delta, 2 * delta):
            for port in range(delta):
                labeling[(node, port)] = "A" if port < a - x - 1 else "X"
        results.append(verify_lemma9(graph, labeling, delta, a, x).ok)
    return ExperimentRecord(
        experiment_id="LEM9",
        paper_claim=(
            "with a Delta-edge coloring, Pi+(a,x) converts in 0 rounds "
            "to Pi(floor((a-2x-1)/2), x+1)"
        ),
        measured=f"{sum(results)}/{len(results)} conversions verified on K_dd",
        agrees=all(results),
    )


def experiment_lemma12_15() -> ExperimentRecord:
    grid_ok = True
    for delta in (3, 4, 5):
        for a in range(delta + 1):
            for x in range(delta + 1):
                solvable = zero_round_solvable_symmetric(family_problem(delta, a, x))
                expected = not (a >= 1 and x <= delta - 1)
                grid_ok = grid_ok and (solvable == expected)
    problem = family_problem(3, 2, 1)
    bound = float(randomized_zero_round_failure_bound(problem))
    experiment = monte_carlo_zero_round_failure(
        problem, strategy=UniformStrategy(problem), trials=200, seed=11
    )
    return ExperimentRecord(
        experiment_id="LEM12/15",
        paper_claim=(
            "0-round unsolvable for a >= 1, x <= Delta-1; randomized "
            "failure >= 1/(3 Delta)^2 >= 1/Delta^8"
        ),
        measured=(
            f"solvability grid exact: {grid_ok}; analytic bound {bound:.4f} "
            f"vs measured uniform-strategy failure {experiment.failure_rate:.2f}"
        ),
        agrees=grid_ok and experiment.failure_rate >= bound,
    )


def experiment_lemma13() -> ExperimentRecord:
    exponents = list(range(6, 31, 3))
    lengths = [sequence_length(2**e, 0) for e in exponents]
    audits = all(
        verify_chain_arithmetic(lemma13_chain(2**e, 0)) for e in (9, 18, 27)
    )
    ratio = lengths[-1] / exponents[-1]
    return ExperimentRecord(
        experiment_id="LEM13",
        paper_claim="a lower-bound chain of length Omega(log Delta), 5 labels",
        measured=(
            f"t(2^e) for e={exponents}: {lengths}; "
            f"t/log2(Delta) -> {ratio:.2f}; side conditions audited: {audits}"
        ),
        agrees=audits
        and all(b >= a for a, b in zip(lengths, lengths[1:]))
        and 0.2 <= ratio <= 0.5,
        details=[f"t(2^{e}) = {t}" for e, t in zip(exponents, lengths)],
    )


def experiment_theorem1() -> ExperimentRecord:
    rows = []
    agrees = True
    for exponent in (9, 12, 15):
        delta = 2**exponent
        summary = lower_bound_summary(2**64, delta, 0)
        rows.append(
            f"Delta=2^{exponent}: det {summary['deterministic_rounds']:.2f}, "
            f"rand {summary['randomized_rounds']:.2f}, premises "
            f"{summary['premises_ok']}"
        )
        agrees = agrees and summary["premises_ok"]
    improvement = (
        this_paper_deterministic_shape(10**3000, 2.0**48)
        / bbo2020_deterministic_lower_bound(10**3000, 2.0**48)
    )
    return ExperimentRecord(
        experiment_id="THM1/COR2",
        paper_claim=(
            "Omega(min{log Delta, log_Delta n}) det / (log_Delta log n) "
            "rand; improves [5] by ~loglog Delta"
        ),
        measured=(
            "; ".join(rows)
            + f"; improvement factor over FOCS'20 at Delta=2^48: {improvement:.1f}x"
        ),
        agrees=agrees and improvement > 2,
        details=rows,
    )


def experiment_upper() -> ExperimentRecord:
    from repro.algorithms.trees import spread_tree_coloring

    graph = truncated_regular_tree(8, 2)
    palette = 9
    colors = spread_tree_coloring(graph, palette)
    rounds = {}
    valid = True
    for k in (0, 1, 3, 7):
        sweep = run_kods_sweep(graph, colors, palette, k)
        rounds[k] = sweep.rounds
        valid = valid and verify_k_outdegree_dominating_set(
            graph, sweep.selected, sweep.orientation, k
        ).ok
    shape = rounds[0] >= 2 * rounds[7]
    return ExperimentRecord(
        experiment_id="UPPER",
        paper_claim="k-ODS in O(Delta/k + log* n) via coloring sweeps",
        measured=(
            f"sweep rounds on the Delta=8 tree: {rounds} (expected ~Delta/(k+1)); "
            f"all outputs verified: {valid}"
        ),
        agrees=valid and shape,
    )


def experiment_mis_algorithms() -> ExperimentRecord:
    graph = random_tree_bounded_degree(400, 4, random.Random(0))
    luby = run_luby_mis(graph, seed=1)
    ghaffari = run_ghaffari_mis(graph, seed=1)
    coloring = run_cole_vishkin(graph)
    sweep = run_mis_sweep(graph, coloring.outputs, 3)
    outputs_ok = all(
        verify_mis(
            graph, {v for v in range(graph.n) if result.outputs[v]}
        ).ok
        for result in (luby, ghaffari, sweep)
    )
    deterministic_rounds = coloring.rounds + sweep.rounds
    return ExperimentRecord(
        experiment_id="MIS-ALGS",
        paper_claim=(
            "Luby O(log n); Ghaffari O(log Delta)+...; deterministic "
            "trees O(log* n) via Cole-Vishkin"
        ),
        measured=(
            f"n=400: Luby {luby.rounds} rounds, Ghaffari-style "
            f"{ghaffari.rounds}, CV+sweep {deterministic_rounds} "
            f"(log* n = {log_star(400)}); all verified: {outputs_ok}"
        ),
        agrees=outputs_ok and deterministic_rounds <= log_star(400) + 10,
    )


def experiment_certificates() -> ExperimentRecord:
    certificates = [build_certificate(delta, 0) for delta in (4, 8, 2**10)]
    return ExperimentRecord(
        experiment_id="CERT",
        paper_claim="the Section 2.4 roadmap chains Lemmas 5-15 into Theorem 1",
        measured="; ".join(
            f"Delta={c.delta}: {len(c.checks)} checks, "
            f"t={c.chain_length}, ok={c.ok}"
            for c in certificates
        ),
        agrees=all(certificate.ok for certificate in certificates),
    )


def experiment_scenarios() -> ExperimentRecord:
    from repro.scenarios import load_registry, run_scenario

    runs = [(spec, run_scenario(spec)) for _, spec in load_registry()]
    families = {spec.family for spec, _ in runs}
    fixed_point = next(
        run.reached_fixed_point
        for spec, run in runs
        if spec.family == "sinkless_orientation"
    )
    return ExperimentRecord(
        experiment_id="SCN",
        paper_claim=(
            "declared LCL chains certify round lower bounds: maximal "
            "matching and 2-ruling sets stay 0-round unsolvable under "
            "self-reduction; sinkless orientation reaches its fixed point"
        ),
        measured=(
            f"{sum(run.ok for _, run in runs)}/{len(runs)} scenarios meet "
            f"their declared expectations across {len(families)} families; "
            f"sinkless-orientation fixed point: {fixed_point}"
        ),
        agrees=all(run.ok for _, run in runs) and fixed_point,
        details=[
            f"{spec.name}: steps={run.steps} "
            f"certified={run.certified_rounds} "
            f"fixed_point={run.reached_fixed_point}"
            for spec, run in runs
        ],
    )


ALL_EXPERIMENTS = [
    experiment_fig1,
    experiment_fig4,
    experiment_fig5_lemma6,
    experiment_lemma5,
    experiment_lemma8,
    experiment_lemma9,
    experiment_lemma12_15,
    experiment_lemma13,
    experiment_theorem1,
    experiment_upper,
    experiment_mis_algorithms,
    experiment_certificates,
    experiment_scenarios,
]


def run_all_experiments() -> list[ExperimentRecord]:
    """Execute every experiment; order matches DESIGN.md's index."""
    return [experiment() for experiment in ALL_EXPERIMENTS]
