"""Minimal fixed-width table rendering for benchmark output.

The benchmark harness prints paper-shaped tables (bound comparisons,
chain lengths, round counts); this helper keeps their formatting in one
place and dependency-free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from repro.robustness.errors import EngineMisuse


class Table:
    """A fixed-width text table with a title and typed cells."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are formatted (floats to 2 decimals)."""
        if len(cells) != len(self.columns):
            raise EngineMisuse(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        """The table as aligned text."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table, framed by blank lines."""
        print()  # reprolint: disable=RL007 -- explicit console renderer for the experiment scripts
        print(self.render())  # reprolint: disable=RL007 -- explicit console renderer for the experiment scripts
        print()  # reprolint: disable=RL007 -- explicit console renderer for the experiment scripts


def _format(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def series(values: Iterable[float], width: int = 40) -> str:
    """A one-line ASCII sparkline for quick shape checks in benchmarks."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    glyphs = " .:-=+*#%@"
    return "".join(
        glyphs[min(int((value - low) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        for value in values
    )
