"""Numeric bound formulas, table builders, and whole-program analysis.

Two halves live here:

* Paper math — :mod:`repro.analysis.bounds` collects the asymptotic
  bound expressions of the paper and of the prior work it compares
  against, as concrete functions of (n, Delta, k);
  :mod:`repro.analysis.tables` renders the comparison tables used by
  the benchmarks and EXPERIMENTS.md.
* Static analysis — :mod:`repro.analysis.callgraph` links the whole
  ``src/repro`` tree into a module-qualified call graph,
  :mod:`repro.analysis.facts` summarizes each function, and
  :mod:`repro.analysis.detectors` runs the interprocedural detectors
  AN001-AN004 (hot-path closure, budget reachability, lock order,
  counter flow) that ``python -m repro.analysis`` gates CI with —
  the cross-call complement to :mod:`repro.lint`'s per-file rules.
"""

from repro.analysis.bounds import (
    balliu2019_lower_bound,
    bbo2020_deterministic_lower_bound,
    bbo2020_randomized_lower_bound,
    kmw_lower_bound,
    log_star,
    upper_bound_k_degree_ds,
    upper_bound_k_outdegree_ds,
    upper_bound_mis_bek,
)
from repro.analysis.callgraph import (
    AnalysisError,
    CallEdge,
    CallGraph,
    build_call_graph,
)
from repro.analysis.detectors import (
    DETECTORS,
    Detector,
    Finding,
    run_detectors,
)
from repro.analysis.facts import ProgramFacts, collect_facts
from repro.analysis.tables import Table

__all__ = [
    "AnalysisError",
    "CallEdge",
    "CallGraph",
    "DETECTORS",
    "Detector",
    "Finding",
    "ProgramFacts",
    "Table",
    "balliu2019_lower_bound",
    "bbo2020_deterministic_lower_bound",
    "bbo2020_randomized_lower_bound",
    "build_call_graph",
    "collect_facts",
    "kmw_lower_bound",
    "log_star",
    "run_detectors",
    "upper_bound_k_degree_ds",
    "upper_bound_k_outdegree_ds",
    "upper_bound_mis_bek",
]
