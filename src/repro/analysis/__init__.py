"""Numeric bound formulas and table builders.

:mod:`repro.analysis.bounds` collects the asymptotic bound expressions
of the paper and of the prior work it compares against, as concrete
functions of (n, Delta, k); :mod:`repro.analysis.tables` renders the
comparison tables used by the benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.bounds import (
    balliu2019_lower_bound,
    bbo2020_deterministic_lower_bound,
    bbo2020_randomized_lower_bound,
    kmw_lower_bound,
    log_star,
    upper_bound_k_degree_ds,
    upper_bound_k_outdegree_ds,
    upper_bound_mis_bek,
)
from repro.analysis.tables import Table

__all__ = [
    "balliu2019_lower_bound",
    "bbo2020_deterministic_lower_bound",
    "bbo2020_randomized_lower_bound",
    "kmw_lower_bound",
    "log_star",
    "upper_bound_k_degree_ds",
    "upper_bound_k_outdegree_ds",
    "upper_bound_mis_bek",
    "Table",
]
