"""Committed suppression baseline for the whole-program analyzer.

A baseline entry grandfathers one known finding by ``(code, path
suffix, symbol)`` — deliberately *not* by line number, so unrelated
edits above a grandfathered site do not resurrect it.  The committed
file at the repository root (``analysis_baseline.json``) is loaded by
default when present; ``--write-baseline`` regenerates it from the
current findings, and entries that no longer match anything are
reported as stale so the file cannot quietly rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.callgraph import AnalysisError
from repro.analysis.detectors import Finding

#: Default baseline filename, resolved against the working directory.
BASELINE_NAME = "analysis_baseline.json"

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    code: str
    path: str
    symbol: str

    def matches(self, finding: Finding) -> bool:
        normalized = finding.path.replace("\\", "/")
        return (
            self.code == finding.code
            and self.symbol == finding.symbol
            and normalized.endswith(self.path)
        )


def load_baseline(path: str) -> list[BaselineEntry]:
    """Parse a baseline file; malformed input is an analysis error."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise AnalysisError(
            "cannot read baseline", path=path, cause=str(error)
        ) from error
    except json.JSONDecodeError as error:
        raise AnalysisError(
            "baseline is not valid JSON", path=path, cause=str(error)
        ) from error
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise AnalysisError(
            "unsupported baseline format",
            path=path,
            expected_version=_VERSION,
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise AnalysisError("baseline entries must be a list", path=path)
    parsed: list[BaselineEntry] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise AnalysisError("baseline entry must be an object", path=path)
        try:
            parsed.append(
                BaselineEntry(
                    code=str(entry["code"]),
                    path=str(entry["path"]),
                    symbol=str(entry["symbol"]),
                )
            )
        except KeyError as error:
            raise AnalysisError(
                "baseline entry missing a field", path=path, field=str(error)
            ) from error
    return parsed


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings into (new, stale-entries).

    A finding matched by any entry is grandfathered; an entry that
    matches no finding is stale and should be pruned.
    """
    fresh: list[Finding] = []
    used: set[BaselineEntry] = set()
    for finding in findings:
        matched = False
        for entry in entries:
            if entry.matches(finding):
                used.add(entry)
                matched = True
        if not matched:
            fresh.append(finding)
    stale = [entry for entry in entries if entry not in used]
    return fresh, stale


def _suffix_of(path: str) -> str:
    """The repo-stable suffix of a finding path (from ``src/`` on)."""
    normalized = path.replace("\\", "/")
    for marker in ("/src/", "/tests/", "/tools/", "/benchmarks/"):
        index = normalized.rfind(marker)
        if index >= 0:
            return normalized[index + 1:]
    return normalized.lstrip("/")


def write_baseline(path: str, findings: list[Finding]) -> int:
    """Serialize ``findings`` as a fresh baseline; returns entry count."""
    entries = sorted(
        {
            (finding.code, _suffix_of(finding.path), finding.symbol)
            for finding in findings
        }
    )
    payload = {
        "version": _VERSION,
        "entries": [
            {"code": code, "path": suffix, "symbol": symbol}
            for code, suffix, symbol in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


__all__ = [
    "BASELINE_NAME",
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
