"""Interprocedural detectors AN001-AN004 over the call graph + facts.

Each detector composes the per-function summaries of
:mod:`repro.analysis.facts` along the edges of
:mod:`repro.analysis.callgraph`:

* **AN001 hotpath-closure** — the transitive call closure of every
  ``# hotpath`` function must be set/frozenset-allocation-free.  RL010
  checks the marked function itself; this extends the invariant across
  calls and reports the offending allocation with the call chain that
  reaches it.
* **AN002 budget-reachability** — every loop in ``core``/``lowerbound``
  code reachable from a ``governed()``-threaded entry point must reach
  a budget checkpoint on some path through its body (directly or via a
  callee whose closure checkpoints), or carry an explicit
  ``# analysis: unbounded-ok(reason)`` waiver.  Only loops that call
  into the project or contain nested loops are considered — a bare
  arithmetic loop is bounded by its iterable, and flagging it would
  drown the signal (a documented resolution limit).
* **AN003 lock-order** — builds the lock-acquisition graph across
  ``service``/``kernel`` thread entry points and reports cycles, plus
  instance attributes written from two different thread roots without
  a common guaranteed-held lock (meet-over-paths intersection
  dataflow; ``__init__`` writes are construction-time and exempt).
* **AN004 counter-flow** — counters declared in
  ``observability.schema`` but emitted nowhere (dead schema), and
  semantic counters emitted under only one engine (kernel modules
  vs. the reference ``core`` implementation) — drift the runtime gate
  would only catch once both engines run.

Findings are :class:`~repro.lint.violations.Violation`-compatible and
carry the anchor's qualified symbol for baseline matching.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph
from repro.analysis.facts import ProgramFacts
from repro.lint.violations import Violation

#: Edge kinds that transfer control in the caller's execution context.
EXEC_KINDS = frozenset({"call", "dispatch", "nested"})


@dataclass(frozen=True)
class Finding:
    """One detector hit, anchored to a source line."""

    code: str
    path: str
    line: int
    message: str
    symbol: str

    def to_violation(self) -> Violation:
        return Violation(
            path=self.path, line=self.line, code=self.code, message=self.message
        )

    def render(self) -> str:
        return self.to_violation().render()


@dataclass(frozen=True)
class Detector:
    """Catalogue entry: code, short name, summary, and the pass itself."""

    code: str
    name: str
    summary: str
    run: Callable[[CallGraph, ProgramFacts], list[Finding]]


# ---------------------------------------------------------------------------
# Shared graph helpers
# ---------------------------------------------------------------------------

def _closure(
    graph: CallGraph,
    roots: Iterable[str],
    kinds: frozenset[str] = EXEC_KINDS,
) -> set[str]:
    """Functions reachable from ``roots`` along edges of ``kinds``."""
    seen: set[str] = set()
    stack = [root for root in roots if root in graph.functions]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for edge in graph.callees(current):
            if edge.kind in kinds and edge.callee not in seen:
                stack.append(edge.callee)
    return seen


def _chain(
    graph: CallGraph,
    start: str,
    goal: str,
    kinds: frozenset[str] = EXEC_KINDS,
) -> list[str] | None:
    """A shortest ``start -> goal`` chain along ``kinds`` edges."""
    if start == goal:
        return [start]
    parents: dict[str, str] = {start: start}
    queue = [start]
    while queue:
        nxt: list[str] = []
        for current in queue:
            for edge in graph.callees(current):
                if edge.kind not in kinds or edge.callee in parents:
                    continue
                parents[edge.callee] = current
                if edge.callee == goal:
                    chain = [goal]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                nxt.append(edge.callee)
        queue = nxt
    return None


def _short(qualname: str) -> str:
    return qualname.removeprefix("repro.")


def _format_chain(chain: list[str]) -> str:
    return " -> ".join(_short(name) for name in chain)


def _module_parts(graph: CallGraph, qualname: str) -> list[str]:
    info = graph.functions.get(qualname)
    return info.module.split(".") if info is not None else []


# ---------------------------------------------------------------------------
# AN001: hot-path closure is allocation-free
# ---------------------------------------------------------------------------

def detect_hotpath_closure(
    graph: CallGraph, facts: ProgramFacts
) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, int]] = set()
    hot = sorted(
        qualname
        for qualname, summary in facts.functions.items()
        if summary.hotpath
    )
    for root in hot:
        for callee in sorted(_closure(graph, [root])):
            summary = facts.functions.get(callee)
            info = graph.functions.get(callee)
            if summary is None or info is None or callee == root:
                continue
            if summary.hotpath:
                # RL010 checks marked functions directly; the closure
                # pass only extends the invariant to unmarked callees.
                continue
            for line, kind in summary.set_allocs:
                if (callee, line) in reported:
                    continue
                reported.add((callee, line))
                chain = _chain(graph, root, callee) or [root, callee]
                findings.append(
                    Finding(
                        code="AN001",
                        path=info.path,
                        line=line,
                        message=(
                            f"{kind} inside the hot-path closure of "
                            f"{_short(root)} (chain: {_format_chain(chain)}); "
                            "hot kernel code speaks int bitmasks"
                        ),
                        symbol=callee,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# AN002: governed loops reach a budget checkpoint
# ---------------------------------------------------------------------------

def _checkpointing_closure(
    graph: CallGraph, facts: ProgramFacts, memo: dict[str, bool], start: str
) -> bool:
    """Does ``start``'s call closure contain a direct checkpoint call?"""
    if start in memo:
        return memo[start]
    for member in _closure(graph, [start]):
        summary = facts.functions.get(member)
        if summary is not None and summary.checkpoint_lines:
            memo[start] = True
            return True
    memo[start] = False
    return False


def detect_budget_reachability(
    graph: CallGraph, facts: ProgramFacts
) -> list[Finding]:
    findings: list[Finding] = []
    entries = sorted(
        qualname
        for qualname, summary in facts.functions.items()
        if summary.calls_governed
    )
    reachable = _closure(graph, entries)
    memo: dict[str, bool] = {}
    for qualname in sorted(reachable):
        summary = facts.functions.get(qualname)
        info = graph.functions.get(qualname)
        if summary is None or info is None:
            continue
        parts = info.module.split(".")
        if "core" not in parts and "lowerbound" not in parts:
            continue
        waived_spans = [
            (loop.line, loop.end_line)
            for loop in summary.loops
            if loop.waiver is not None and loop.waiver
        ]
        for loop in summary.loops:
            if loop.waiver is not None:
                if loop.waiver:
                    continue
                findings.append(
                    Finding(
                        code="AN002",
                        path=info.path,
                        line=loop.line,
                        message=(
                            "unbounded-ok waiver needs a non-empty reason: "
                            "# analysis: unbounded-ok(<why this loop is bounded>)"
                        ),
                        symbol=qualname,
                    )
                )
                continue
            if any(
                start <= loop.line and loop.end_line <= end
                for start, end in waived_spans
            ):
                # A waived outer loop covers the loops nested in it.
                continue
            if loop.has_direct_checkpoint:
                continue
            nests_a_loop = any(
                other.line > loop.line and other.end_line <= loop.end_line
                for other in summary.loops
                if other is not loop
            )
            edges_in = [
                edge
                for edge in graph.callees(qualname)
                if edge.kind in EXEC_KINDS
                and loop.line <= edge.line <= loop.end_line
            ]
            if (loop.kind != "while" and not nests_a_loop) or not edges_in:
                # Combinatorial blowup lives in while loops (frontier
                # growth, DFS stacks) and nested for loops (products)
                # that call back into the project; a single-level for
                # loop is bounded by its iterable — in governed code
                # itself a budget-checked artifact — and a call-free
                # loop is local arithmetic over its operands.
                # Documented resolution limit.
                continue
            if any(
                _checkpointing_closure(graph, facts, memo, edge.callee)
                for edge in edges_in
            ):
                continue
            entry_chain: list[str] | None = None
            for entry in entries:
                entry_chain = _chain(graph, entry, qualname)
                if entry_chain is not None:
                    break
            chain_text = (
                _format_chain(entry_chain) if entry_chain else _short(qualname)
            )
            findings.append(
                Finding(
                    code="AN002",
                    path=info.path,
                    line=loop.line,
                    message=(
                        f"{loop.kind} loop reachable from a governed entry "
                        f"point (chain: {chain_text}) never reaches a budget "
                        "checkpoint; checkpoint inside the body or waive with "
                        "# analysis: unbounded-ok(reason)"
                    ),
                    symbol=qualname,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# AN003: lock-order cycles and unguarded cross-thread writes
# ---------------------------------------------------------------------------

def _in_lock_scope(parts: list[str]) -> bool:
    return "service" in parts or "kernel" in parts


def _closure_locks(
    graph: CallGraph,
    facts: ProgramFacts,
    memo: dict[str, frozenset[str]],
    start: str,
) -> frozenset[str]:
    """Every lock acquired anywhere in ``start``'s call closure."""
    if start in memo:
        return memo[start]
    acquired: set[str] = set()
    for member in _closure(graph, [start]):
        summary = facts.functions.get(member)
        if summary is not None:
            acquired.update(span.lock for span in summary.lock_spans)
    memo[start] = frozenset(acquired)
    return memo[start]


def _lock_cycles(
    order: dict[str, dict[str, tuple[str, int, str]]]
) -> list[list[str]]:
    """Elementary cycles of the lock-order graph (deduplicated)."""
    cycles: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()

    def walk(start: str, current: str, trail: list[str]) -> None:
        for nxt in sorted(order.get(current, {})):
            if nxt == start:
                cycle = trail[:]
                rotation = min(range(len(cycle)), key=lambda i: cycle[i])
                key = tuple(cycle[rotation:] + cycle[:rotation])
                if key not in seen:
                    seen.add(key)
                    cycles.append(cycle)
            elif nxt not in trail and nxt > start:
                walk(start, nxt, trail + [nxt])

    for node in sorted(order):
        walk(node, node, [node])
    return cycles


def detect_lock_order(graph: CallGraph, facts: ProgramFacts) -> list[Finding]:
    findings: list[Finding] = []
    #: held lock -> acquired lock -> (path, line, via-description).
    order: dict[str, dict[str, tuple[str, int, str]]] = {}
    lock_memo: dict[str, frozenset[str]] = {}
    for qualname in sorted(facts.functions):
        summary = facts.functions[qualname]
        info = graph.functions.get(qualname)
        if info is None or not _in_lock_scope(info.module.split(".")):
            continue
        for span in summary.lock_spans:
            for other in summary.lock_spans:
                if (
                    other is not span
                    and span.line <= other.line <= span.end_line
                    and other.lock != span.lock
                ):
                    order.setdefault(span.lock, {}).setdefault(
                        other.lock, (info.path, other.line, _short(qualname))
                    )
            for edge in graph.callees(qualname):
                if edge.kind not in EXEC_KINDS:
                    continue
                if not span.line <= edge.line <= span.end_line:
                    continue
                for lock in sorted(
                    _closure_locks(graph, facts, lock_memo, edge.callee)
                ):
                    if lock != span.lock:
                        order.setdefault(span.lock, {}).setdefault(
                            lock,
                            (
                                info.path,
                                edge.line,
                                f"{_short(qualname)} -> {_short(edge.callee)}",
                            ),
                        )
    for cycle in _lock_cycles(order):
        first, second = cycle[0], cycle[1 % len(cycle)]
        path, line, via = order[first][second]
        ordering = " -> ".join(cycle + [cycle[0]])
        findings.append(
            Finding(
                code="AN003",
                path=path,
                line=line,
                message=(
                    f"lock-order cycle {ordering} (edge via {via}); "
                    "acquire these locks in one global order"
                ),
                symbol=via.split(" -> ")[0],
            )
        )

    # Meet-over-paths: per thread root, the locks *guaranteed* held on
    # every path from the root to each function.
    held: dict[str, dict[str, frozenset[str]]] = {}
    for root in sorted(graph.thread_roots):
        if root not in graph.functions:
            continue
        table: dict[str, frozenset[str]] = {root: frozenset()}
        queue = [root]
        while queue:
            current = queue.pop(0)
            current_facts = facts.functions.get(current)
            if current_facts is None:
                continue
            for edge in graph.callees(current):
                if edge.kind not in EXEC_KINDS:
                    continue
                candidate = table[current] | current_facts.locks_held_at(
                    edge.line
                )
                previous = table.get(edge.callee)
                merged = (
                    candidate if previous is None else previous & candidate
                )
                if previous is None or merged != previous:
                    table[edge.callee] = merged
                    queue.append(edge.callee)
        held[root] = table

    #: class-qualified attribute -> (root, guards, path, line, function).
    writes: dict[str, list[tuple[str, frozenset[str], str, int, str]]] = {}
    for root, table in held.items():
        for qualname, root_guards in table.items():
            summary = facts.functions.get(qualname)
            info = graph.functions.get(qualname)
            if summary is None or info is None or info.cls is None:
                continue
            if info.name == "__init__":
                continue
            if not _in_lock_scope(info.module.split(".")):
                continue
            for attr, line in summary.self_writes:
                guards = root_guards | summary.locks_held_at(line)
                writes.setdefault(f"{info.cls}.{attr}", []).append(
                    (root, guards, info.path, line, qualname)
                )
    for attr_key in sorted(writes):
        occurrences = writes[attr_key]
        flagged = False
        for index, (root_a, guards_a, path, line, writer) in enumerate(
            occurrences
        ):
            if flagged:
                break
            for root_b, guards_b, _, _, other in occurrences[index + 1:]:
                if root_a == root_b or guards_a & guards_b:
                    continue
                findings.append(
                    Finding(
                        code="AN003",
                        path=path,
                        line=line,
                        message=(
                            f"attribute {_short(attr_key)} is written from "
                            f"thread roots {_short(root_a)} (in "
                            f"{_short(writer)}) and {_short(root_b)} (in "
                            f"{_short(other)}) with no common lock held"
                        ),
                        symbol=attr_key,
                    )
                )
                flagged = True
                break
    return findings


# ---------------------------------------------------------------------------
# AN004: counter flow between schema and the two engines
# ---------------------------------------------------------------------------

def detect_counter_flow(graph: CallGraph, facts: ProgramFacts) -> list[Finding]:
    findings: list[Finding] = []
    emissions: dict[str, list[tuple[str, int]]] = {}
    for qualname, summary in facts.functions.items():
        for name, line in summary.counter_adds:
            emissions.setdefault(name, []).append((qualname, line))
    for name in sorted(facts.schema):
        path, line = facts.schema[name]
        sites = emissions.get(name, [])
        if not sites:
            findings.append(
                Finding(
                    code="AN004",
                    path=path,
                    line=line,
                    message=(
                        f"counter '{name}' is declared in the schema but "
                        "emitted nowhere; wire an emission or delete the "
                        "declaration"
                    ),
                    symbol=name,
                )
            )
            continue
        if name not in facts.semantic_counters:
            continue
        # Engine attribution is by module: ``core.kernel.*`` is the
        # kernel engine, ``round_elimination`` is the reference engine,
        # and everything else (self-reduction, lowerbound, service) is
        # engine-neutral shared code that both engines run through.
        kernel_sites = [
            site
            for site in sites
            if "kernel" in _module_parts(graph, site[0])
        ]
        reference_sites = [
            site
            for site in sites
            if "round_elimination" in _module_parts(graph, site[0])
        ]
        if bool(kernel_sites) == bool(reference_sites):
            # Emitted by both engines, or by neither (engine-neutral
            # counters like chain bookkeeping) — no drift risk.
            continue
        emitting = "kernel" if kernel_sites else "reference"
        silent = "reference" if kernel_sites else "kernel"
        site_text = ", ".join(
            f"{_short(site)}:{site_line}"
            for site, site_line in sorted(kernel_sites or reference_sites)
        )
        findings.append(
            Finding(
                code="AN004",
                path=path,
                line=line,
                message=(
                    f"semantic counter '{name}' is emitted only by the "
                    f"{emitting} engine ({site_text}); the {silent} engine "
                    "never emits it, so the differential drift gate cannot "
                    "compare them"
                ),
                symbol=name,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Catalogue and driver
# ---------------------------------------------------------------------------

DETECTORS: tuple[Detector, ...] = (
    Detector(
        code="AN001",
        name="hotpath-closure",
        summary=(
            "the transitive call closure of every # hotpath function is "
            "set/frozenset-allocation-free"
        ),
        run=detect_hotpath_closure,
    ),
    Detector(
        code="AN002",
        name="budget-reachability",
        summary=(
            "every loop in core/lowerbound code reachable from a governed() "
            "entry point reaches a budget checkpoint or carries an "
            "unbounded-ok waiver"
        ),
        run=detect_budget_reachability,
    ),
    Detector(
        code="AN003",
        name="lock-order",
        summary=(
            "no lock-order cycles across service/kernel thread entry "
            "points, and no attribute written from two thread roots "
            "without a common lock"
        ),
        run=detect_lock_order,
    ),
    Detector(
        code="AN004",
        name="counter-flow",
        summary=(
            "no counter declared in observability.schema but emitted "
            "nowhere, and no semantic counter emitted by only one engine"
        ),
        run=detect_counter_flow,
    ),
)


def run_detectors(
    graph: CallGraph,
    facts: ProgramFacts,
    codes: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the catalogue (or a subset) and apply inline suppressions."""
    wanted = set(codes) if codes is not None else None
    findings: list[Finding] = []
    for detector in DETECTORS:
        if wanted is not None and detector.code not in wanted:
            continue
        findings.extend(detector.run(graph, facts))
    findings = [
        finding
        for finding in findings
        if not facts.is_suppressed(finding.path, finding.line, finding.code)
    ]
    return sorted(findings, key=lambda f: (f.path, f.line, f.code, f.message))


__all__ = [
    "DETECTORS",
    "Detector",
    "Finding",
    "detect_budget_reachability",
    "detect_counter_flow",
    "detect_hotpath_closure",
    "detect_lock_order",
    "run_detectors",
]
