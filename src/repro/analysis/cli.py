"""The ``python -m repro.analysis`` command line.

Shares the exit-code convention of ``python -m repro.lint`` (and the
``tools/`` scripts):

* ``0`` — the scanned tree is clean (or every finding is baselined);
* ``1`` — new findings;
* ``2`` — usage error, or input that could not be read or parsed.

Like :mod:`repro.lint.cli`, this module deliberately prints — it is
the script layer RL007 routes user-facing output to.
"""

from __future__ import annotations

import json
import os
import sys

import repro
from repro.analysis.baseline import (
    BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import AnalysisError, build_call_graph
from repro.analysis.detectors import DETECTORS, Finding, run_detectors
from repro.analysis.facts import collect_facts

USAGE = """\
usage: python -m repro.analysis [options] [PATH ...]

Whole-program static analysis for the round-elimination engine: builds
the module-qualified call graph of the scanned tree and runs the
interprocedural detectors AN001-AN004 (hot-path closure, budget
reachability, lock order, counter flow).  With no PATH the installed
`repro` package tree is scanned.

Options:
    --json                 emit findings as a JSON report on stdout
    --baseline FILE        grandfather findings listed in FILE
                           (default: ./analysis_baseline.json if present)
    --no-baseline          ignore any default baseline file
    --write-baseline FILE  write the current findings to FILE and exit 0
    --only CODES           comma-separated detector codes to run
    --list-detectors       print the detector catalogue and exit

Waive a finding inline on its anchor line:
    # analysis: disable=AN001 -- justification
or, for AN002 loops:
    # analysis: unbounded-ok(reason)

Exit status (unified across repro tooling):
    0  clean
    1  findings
    2  usage error or unreadable/unparseable input
"""


def list_detectors() -> str:
    """The detector catalogue as aligned ``CODE name summary`` lines."""
    width = max(len(detector.name) for detector in DETECTORS)
    return "\n".join(
        f"{detector.code}  {detector.name.ljust(width)}  {detector.summary}"
        for detector in DETECTORS
    )


def _json_report(
    findings: list[Finding], stale: list[str], scanned: int
) -> str:
    return json.dumps(
        {
            "schema": 1,
            "scanned_modules": scanned,
            "violations": [
                {
                    "code": finding.code,
                    "path": finding.path,
                    "line": finding.line,
                    "symbol": finding.symbol,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "stale_baseline_entries": stale,
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: list[str]) -> int:
    paths: list[str] = []
    as_json = False
    baseline_path: str | None = None
    no_baseline = False
    write_path: str | None = None
    only: list[str] | None = None
    arguments = list(argv)
    while arguments:
        argument = arguments.pop(0)
        if argument in ("-h", "--help"):
            print(USAGE)  # reprolint: disable=RL007 -- the analysis CLI front-end
            return 0
        if argument == "--list-detectors":
            print(list_detectors())  # reprolint: disable=RL007 -- the analysis CLI front-end
            return 0
        if argument == "--json":
            as_json = True
            continue
        if argument == "--no-baseline":
            no_baseline = True
            continue
        if argument in ("--baseline", "--write-baseline", "--only"):
            if not arguments:
                print(  # reprolint: disable=RL007 -- the analysis CLI front-end
                    f"error: {argument} needs a value\n{USAGE}",
                    file=sys.stderr,
                )
                return 2
            value = arguments.pop(0)
            if argument == "--baseline":
                baseline_path = value
            elif argument == "--write-baseline":
                write_path = value
            else:
                only = [code.strip() for code in value.split(",") if code.strip()]
                known = {detector.code for detector in DETECTORS}
                unknown = [code for code in only if code not in known]
                if unknown:
                    print(  # reprolint: disable=RL007 -- the analysis CLI front-end
                        f"error: unknown detector(s): {', '.join(unknown)}",
                        file=sys.stderr,
                    )
                    return 2
            continue
        if argument.startswith("-"):
            print(  # reprolint: disable=RL007 -- the analysis CLI front-end
                f"error: unknown option {argument}\n{USAGE}", file=sys.stderr
            )
            return 2
        paths.append(argument)
    if not paths:
        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    if baseline_path is None and not no_baseline and write_path is None:
        if os.path.isfile(BASELINE_NAME):
            baseline_path = BASELINE_NAME

    try:
        graph = build_call_graph(paths)
        facts = collect_facts(graph)
        findings = run_detectors(graph, facts, only)
        entries = load_baseline(baseline_path) if baseline_path else []
    except AnalysisError as error:
        print(  # reprolint: disable=RL007 -- the analysis CLI front-end
            f"error: {error}", file=sys.stderr
        )
        return 2

    if write_path is not None:
        count = write_baseline(write_path, findings)
        print(  # reprolint: disable=RL007 -- the analysis CLI front-end
            f"repro.analysis: wrote {count} baseline entr"
            f"{'y' if count == 1 else 'ies'} to {write_path}",
            file=sys.stderr,
        )
        return 0

    fresh, stale = apply_baseline(findings, entries)
    stale_text = [
        f"{entry.code} {entry.path} {entry.symbol}" for entry in stale
    ]
    if as_json:
        print(  # reprolint: disable=RL007 -- the analysis CLI front-end
            _json_report(fresh, stale_text, len(graph.modules))
        )
    else:
        for finding in fresh:
            print(finding.render())  # reprolint: disable=RL007 -- the analysis CLI front-end
    for text in stale_text:
        print(  # reprolint: disable=RL007 -- the analysis CLI front-end
            f"warning: stale baseline entry: {text}", file=sys.stderr
        )
    if fresh:
        print(  # reprolint: disable=RL007 -- the analysis CLI front-end
            f"repro.analysis: {len(fresh)} finding(s) across "
            f"{len(graph.modules)} module(s)"
            + (f" ({len(findings) - len(fresh)} baselined)" if entries else ""),
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = ["USAGE", "list_detectors", "main"]
