"""Classic locally checkable problems used to cross-validate the engine.

These have well-known behaviour under round elimination (see the round
eliminator tutorial [36] and Brandt PODC'19), which the test suite uses
as ground truth for the R / Rbar implementation:

* *sinkless orientation* is a non-trivial fixed point of the speedup;
* *proper colorings* are 0-round solvable in the formalism only when
  enough colors are available relative to the instance family;
* *perfect matching* has the classic two-label edge encoding.
"""

from __future__ import annotations

import itertools

from repro.core.constraints import Constraint
from repro.core.configurations import Configuration
from repro.core.problem import Problem
from repro.robustness.errors import InvalidProblem


def sinkless_orientation_problem(delta: int) -> Problem:
    """Sinkless orientation on Delta-regular graphs.

    Each edge is oriented: one endpoint labels it ``O`` (outgoing), the
    other ``I`` (incoming).  Every node needs at least one outgoing
    edge.  This is the seminal lower-bound problem of Brandt et
    al. [14] and a fixed point of one round-elimination step.
    """
    if delta < 2:
        raise InvalidProblem("sinkless orientation needs delta >= 2")
    return Problem.from_text(
        node_lines=[f"O [IO]^{delta - 1}"],
        edge_lines=["O I"],
        name=f"SinklessOrientation(delta={delta})",
    )


def coloring_problem(delta: int, colors: int) -> Problem:
    """Proper vertex ``colors``-coloring on Delta-regular graphs.

    A node of color ``c`` outputs ``c`` on every incident edge; an edge
    must see two distinct colors.
    """
    if colors < 2:
        raise InvalidProblem("need at least 2 colors")
    names = [f"c{i}" for i in range(colors)]
    node_constraint = Constraint(
        Configuration([name] * delta) for name in names
    )
    edge_constraint = Constraint(
        Configuration(pair) for pair in itertools.combinations(names, 2)
    )
    return Problem(
        names, node_constraint, edge_constraint, name=f"Coloring({colors}, delta={delta})"
    )


def perfect_matching_problem(delta: int) -> Problem:
    """Perfect matching on Delta-regular graphs.

    Every node has exactly one matched edge (``M``); matched edges have
    ``M`` on both sides and unmatched edges ``O`` on both sides.
    """
    if delta < 1:
        raise InvalidProblem("perfect matching needs delta >= 1")
    return Problem.from_text(
        node_lines=[f"M O^{delta - 1}"],
        edge_lines=["M M", "O O"],
        name=f"PerfectMatching(delta={delta})",
    )
