"""The MIS problem in the round-elimination formalism (paper, Sec. 2.2).

Three labels are necessary and sufficient to encode MIS in this
formalism [3].  Nodes in the independent set output ``M`` on every
incident edge; nodes outside output ``P`` toward exactly one MIS
neighbor (maximality) and ``O`` on the remaining edges.  The edge
constraint forbids ``MM`` (independence), ``PP`` and ``PO``
(pointers must reach MIS nodes).
"""

from __future__ import annotations

from repro.core.problem import Problem
from repro.robustness.errors import InvalidProblem


def mis_problem(delta: int) -> Problem:
    """The MIS problem on Delta-regular graphs.

    Node constraint: ``M^Delta`` and ``P O^(Delta-1)``.
    Edge constraint: ``M [PO]`` and ``OO``.
    """
    if delta < 2:
        raise InvalidProblem("MIS in this formalism needs delta >= 2")
    return Problem.from_text(
        node_lines=[f"M^{delta}", f"P O^{delta - 1}"],
        edge_lines=["M [PO]", "O O"],
        name=f"MIS(delta={delta})",
    )
