"""Concrete locally checkable problems used by the paper.

* :mod:`repro.problems.mis` — the MIS encoding of Section 2.2.
* :mod:`repro.problems.family` — the family Pi_Delta(a, x) of Section 3,
  its strengthened sibling Pi+_Delta(a, x) from Lemma 8, and the
  relaxed Pi_rel used inside Lemma 8's proof.
* :mod:`repro.problems.classic` — classics used as engine cross-checks
  (sinkless orientation, colorings, perfect matching).
* :mod:`repro.problems.ruling_set` — depth-parameterized ruling sets
  (depth 1 is exactly MIS), after Balliu-Brandt-Olivetti.
* :mod:`repro.problems.matching` — maximal matching, the base problem
  of the Khoury-Schild self-reduction.
"""

from repro.problems.mis import mis_problem
from repro.problems.family import (
    FAMILY_LABELS,
    family_plus_problem,
    family_problem,
    pi_rel_problem,
)
from repro.problems.classic import (
    coloring_problem,
    perfect_matching_problem,
    sinkless_orientation_problem,
)
from repro.problems.matching import maximal_matching_problem
from repro.problems.ruling_set import ruling_set_problem

__all__ = [
    "mis_problem",
    "FAMILY_LABELS",
    "family_problem",
    "family_plus_problem",
    "pi_rel_problem",
    "coloring_problem",
    "perfect_matching_problem",
    "sinkless_orientation_problem",
    "maximal_matching_problem",
    "ruling_set_problem",
]
