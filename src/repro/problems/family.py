"""The problem family Pi_Delta(a, x) of Section 3 and its relatives.

``family_problem(delta, a, x)`` is the paper's Pi_Delta(a, x):

* type-1 nodes (in the dominating set) output ``M^(Delta-x) X^x`` —
  up to ``x`` incident edges (the ``X`` ones) may lead to other
  dominating-set nodes, realizing the outdegree-``x`` relaxation of
  independence;
* type-3 nodes output ``A^a X^(Delta-a)`` — they *own* at least ``a``
  incident edges;
* type-2 nodes output ``P O^(Delta-1)`` — they point to a dominating
  neighbor (or to a type-3 neighbor through a non-owned edge).

Edge constraint (Section 3.1): ``M[PAOX]``, ``O[MAOX]``, ``P[MX]``,
``A[MOX]``, ``X[MPAOX]`` — i.e. ``MM``, ``AA``, ``PP``, ``PA`` and
``PO`` are the forbidden pairs.

``family_plus_problem(delta, a, x)`` is Pi+_Delta(a, x) from Lemma 8:
the problem shown to be exactly one round easier than Pi_Delta(a, x).
It adds the label ``C`` with node configuration ``C^(Delta-x) X^x``
(edge-compatible with ``[MAOX]``), lowers the ownership requirement of
``A``-nodes to ``a - x - 1`` and the exponent of the ``M``
configuration to ``Delta - x - 1``.

``pi_rel_problem(delta, a, x)`` is the same problem *before* the final
renaming: its labels are the six right-closed sets of labels of
R(Pi_Delta(a, x)) that appear in Lemma 8's proof (MUBQ, XMOUABPQ, PQ,
OUABPQ, ABPQ, UBPQ).
"""

from __future__ import annotations

from repro.core.labels import Alphabet
from repro.core.problem import Problem
from repro.robustness.errors import InvalidProblem

#: The label set of every Pi_Delta(a, x) (Section 3.1).
FAMILY_LABELS = ("M", "P", "O", "A", "X")

#: The right-closed sets of R(Pi)-labels used by Lemma 8, with the
#: renaming of its final mapping (set -> Pi+ label).
PI_REL_RENAMING = {
    frozenset("MUBQ"): "M",
    frozenset("XMOUABPQ"): "X",
    frozenset("PQ"): "P",
    frozenset("OUABPQ"): "O",
    frozenset("ABPQ"): "A",
    frozenset("UBPQ"): "C",
}


def _check_parameters(delta: int, a: int, x: int) -> None:
    if delta < 1:
        raise InvalidProblem(f"delta must be positive, got {delta}")
    if not 0 <= a <= delta:
        raise InvalidProblem(f"need 0 <= a <= delta, got a={a}, delta={delta}")
    if not 0 <= x <= delta:
        raise InvalidProblem(f"need 0 <= x <= delta, got x={x}, delta={delta}")


def family_problem(delta: int, a: int, x: int) -> Problem:
    """The paper's Pi_Delta(a, x) (Section 3.1)."""
    _check_parameters(delta, a, x)
    node_lines = [
        _power("M", delta - x) + _power("X", x),
        _power("A", a) + _power("X", delta - a),
        _power("P", 1) + _power("O", delta - 1),
    ]
    edge_lines = [
        "M [PAOX]",
        "O [MAOX]",
        "P [MX]",
        "A [MOX]",
        "X [MPAOX]",
    ]
    problem = Problem.from_text(
        node_lines=[line for line in node_lines if line],
        edge_lines=edge_lines,
        name=f"Pi(delta={delta}, a={a}, x={x})",
    )
    # Keep the full five-label alphabet even when a parameter boundary
    # (x = 0, a = 0, ...) makes some label unused in the node constraint:
    # the constraints of the paper always mention all five labels.
    return Problem(
        Alphabet(FAMILY_LABELS),
        problem.node_constraint,
        problem.edge_constraint,
        name=problem.name,
    )


def family_plus_problem(delta: int, a: int, x: int) -> Problem:
    """Pi+_Delta(a, x): one round easier than Pi_Delta(a, x) (Lemma 8).

    Requires ``x + 2 <= a <= delta`` (the hypothesis of Lemma 8), so
    that the ``A`` configuration ``A^(a-x-1) X^(delta-a+x+1)`` and the
    ``M`` configuration ``M^(delta-x-1) X^(x+1)`` are well formed.
    """
    _check_parameters(delta, a, x)
    if a < x + 2:
        raise InvalidProblem(f"Lemma 8 needs a >= x + 2, got a={a}, x={x}")
    if x + 1 > delta:
        raise InvalidProblem(f"need x + 1 <= delta, got x={x}, delta={delta}")
    node_lines = [
        _power("M", delta - x - 1) + _power("X", x + 1),
        _power("C", delta - x) + _power("X", x),
        _power("A", a - x - 1) + _power("X", delta - a + x + 1),
        _power("P", 1) + _power("O", delta - 1),
    ]
    edge_lines = [
        "M [PAOXC]",
        "O [MAOXC]",
        "P [MX]",
        "A [MOXC]",
        "X [MPAOXC]",
        "C [MAOX]",
    ]
    problem = Problem.from_text(
        node_lines=[line for line in node_lines if line],
        edge_lines=edge_lines,
        name=f"Pi+(delta={delta}, a={a}, x={x})",
    )
    return Problem(
        Alphabet(("M", "P", "O", "A", "X", "C")),
        problem.node_constraint,
        problem.edge_constraint,
        name=problem.name,
    )


def pi_rel_problem(delta: int, a: int, x: int) -> Problem:
    """Pi_rel from Lemma 8's proof: Pi+ before the final renaming.

    Its labels are the six right-closed sets of (renamed) labels of
    R(Pi_Delta(a, x)); renaming them through :data:`PI_REL_RENAMING`
    yields exactly :func:`family_plus_problem` (checked in the tests —
    this is the last step of Lemma 8).
    """
    plus = family_plus_problem(delta, a, x)
    inverse = {new: old for old, new in PI_REL_RENAMING.items()}
    return plus.rename(inverse, name=f"Pi_rel(delta={delta}, a={a}, x={x})")


def _power(label: str, exponent: int) -> str:
    if exponent < 0:
        raise InvalidProblem(f"negative exponent for {label}: {exponent}")
    if exponent == 0:
        return ""
    return f"{label}^{exponent} "
