"""Maximal matching in the round-elimination formalism.

The self-reduction route to maximal-matching lower bounds
(Khoury-Schild, arXiv 2505.15654) iterates a round-elimination step
followed by a complexity-preserving condensation; this module supplies
the base problem the :mod:`repro.core.self_reduction` operator is
exercised on.

Matched nodes output ``M`` on their matched edge and ``O`` elsewhere;
unmatched nodes output ``P`` everywhere.  The edge constraint allows
``MM`` (both endpoints agree on the matched edge), ``OO`` (an edge
between two matched nodes), and ``OP`` (a matched node next to an
unmatched one), and forbids ``PP`` — two adjacent unmatched nodes would
contradict maximality.  The problem is 0-round solvable on
symmetric-port instances (match along the first port) but not in the
general port-numbering model, so scenarios over it verify under the
``pn`` policy.
"""

from __future__ import annotations

from repro.core.problem import Problem
from repro.robustness.errors import InvalidProblem


def maximal_matching_problem(delta: int) -> Problem:
    """The maximal matching problem on Delta-regular graphs.

    Node constraint: ``M O^(Delta-1)`` and ``P^Delta``.
    Edge constraint: ``M M``, ``O [OP]``.
    """
    if delta < 2:
        raise InvalidProblem(
            "maximal matching in this formalism needs delta >= 2", delta=delta
        )
    return Problem.from_text(
        node_lines=[f"M O^{delta - 1}" if delta > 2 else "M O", f"P^{delta}"],
        edge_lines=["M M", "O [OP]"],
        name=f"MaximalMatching(delta={delta})",
    )
