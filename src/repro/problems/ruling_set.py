"""Ruling sets in the round-elimination formalism.

A *2-ruling set* is an independent set S such that every node is within
distance 2 of S; it interpolates between MIS (distance 1) and sparser
dominating structures, and its round-elimination lower bound is the
subject of Balliu-Brandt-Olivetti (arXiv 2004.08282).  The encoding
generalizes the MIS encoding by a depth-indexed pointer chain: a node
at distance ``i`` from S points (label ``P_i``) at a neighbor of
distance ``i - 1`` and outputs the level's filler label ``O_i``
elsewhere.  Depth 1 is *exactly* the MIS problem (same labels, same
constraints), which the property tests pin down.
"""

from __future__ import annotations

from repro.core.configurations import Configuration
from repro.core.constraints import Constraint
from repro.core.problem import Problem
from repro.robustness.errors import InvalidProblem

#: Pointer/filler label names per depth level.  The first two levels
#: reuse the paper-style single characters (level 1 matches the MIS
#: alphabet literally); deeper levels fall back to indexed names.
_LEVEL_NAMES = (("P", "O"), ("Q", "Z"))


def _level_labels(level: int) -> tuple[str, str]:
    if level <= len(_LEVEL_NAMES):
        return _LEVEL_NAMES[level - 1]
    return (f"P{level}", f"O{level}")


def ruling_set_problem(delta: int, depth: int = 2) -> Problem:
    """The ``depth``-ruling-set problem on Delta-regular graphs.

    Node constraint: ``M^Delta`` (in the set) plus one configuration
    ``P_i O_i^(Delta-1)`` per level ``1 <= i <= depth`` (at distance
    ``i``, pointing at a distance-``i-1`` neighbor).  Edge constraint:
    ``M [P_1 O_1]`` (independence: no ``MM``), each level's filler
    pairs with itself and with the next level (``O_i O_i``,
    ``O_i P_{i+1}``, ``O_i O_{i+1}``), and the deepest filler is
    self-compatible (``O_depth O_depth``).

    ``ruling_set_problem(delta, 1)`` equals ``mis_problem(delta)``.
    """
    if delta < 2:
        raise InvalidProblem(
            "ruling sets in this formalism need delta >= 2", delta=delta
        )
    if depth < 1:
        raise InvalidProblem("ruling-set depth must be >= 1", depth=depth)
    node_rows: list[Configuration] = [Configuration(("M",) * delta)]
    for level in range(1, depth + 1):
        pointer, filler = _level_labels(level)
        node_rows.append(
            Configuration((pointer,) + (filler,) * (delta - 1))
        )
    first_pointer, first_filler = _level_labels(1)
    edge_rows: list[Configuration] = [
        Configuration(("M", first_pointer)),
        Configuration(("M", first_filler)),
    ]
    for level in range(1, depth):
        _, filler = _level_labels(level)
        next_pointer, next_filler = _level_labels(level + 1)
        edge_rows.append(Configuration((filler, filler)))
        edge_rows.append(Configuration((filler, next_pointer)))
        edge_rows.append(Configuration((filler, next_filler)))
    _, deepest_filler = _level_labels(depth)
    edge_rows.append(Configuration((deepest_filler, deepest_filler)))
    alphabet = ["M"]
    for level in range(1, depth + 1):
        alphabet.extend(_level_labels(level))
    return Problem(
        alphabet,
        Constraint(node_rows),
        Constraint(edge_rows),
        name=f"RulingSet(delta={delta}, depth={depth})",
    )
