"""Tree utilities: rooting and parent-pointer inputs.

Several upper-bound algorithms (Cole-Vishkin, the sweep orientations)
operate on *rooted* trees: each node knows the port leading to its
parent.  Distributively, such an orientation is itself an input (the
classic setting for Cole-Vishkin); these helpers compute it centrally
and hand it to the simulator as per-node input, which is recorded as a
deliberate substitution in DESIGN.md.
"""

from __future__ import annotations

from repro.sim.graph import Graph
from repro.robustness.errors import InvalidGraph


def root_tree(graph: Graph, root: int = 0) -> list[int | None]:
    """Parent of every node in the tree rooted at ``root`` (None there)."""
    if not graph.is_tree():
        raise InvalidGraph("root_tree needs a tree")
    parent: list[int | None] = [None] * graph.n
    seen = {root}
    queue = [root]
    while queue:
        node = queue.pop()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = node
                queue.append(neighbor)
    return parent


def parent_ports(graph: Graph, root: int = 0) -> list[int | None]:
    """Port leading to the parent, per node (None at the root)."""
    parent = root_tree(graph, root)
    return [
        graph.port_to(node, parent[node]) if parent[node] is not None else None
        for node in range(graph.n)
    ]


def orient_toward_parent(graph: Graph, root: int = 0) -> dict[int, int]:
    """Every tree edge oriented child -> parent (head = parent).

    The resulting orientation has outdegree exactly 1 at non-roots and
    0 at the root — the reason trees make k-outdegree constraints easy
    once a rooting is available (see DESIGN.md).
    """
    parent = root_tree(graph, root)
    orientation: dict[int, int] = {}
    for edge_id, u, v in graph.edges():
        orientation[edge_id] = u if parent[v] == u else v
    return orientation


def spread_tree_coloring(graph: Graph, palette: int, root: int = 0) -> list[int]:
    """A proper coloring of a tree using the whole ``palette``.

    Children of each node take round-robin colors skipping the parent's
    color, so for ``palette >= Delta`` the coloring is proper *and*
    spreads across all colors — unlike greedy-by-id, which 2-colors any
    tree and hides the Delta/(k+1) scaling of the sweep experiments.
    """
    if palette < max(graph.max_degree(), 2):
        raise InvalidGraph(
            f"palette {palette} too small for max degree {graph.max_degree()}"
        )
    if not graph.is_tree():
        raise InvalidGraph("spread_tree_coloring needs a tree")
    colors = [-1] * graph.n
    colors[root] = 0
    queue = [root]
    seen = {root}
    while queue:
        node = queue.pop()
        next_color = (colors[node] + 1) % palette
        for neighbor in graph.neighbors(node):
            if neighbor in seen:
                continue
            if next_color == colors[node]:
                next_color = (next_color + 1) % palette
            colors[neighbor] = next_color
            next_color = (next_color + 1) % palette
            seen.add(neighbor)
            queue.append(neighbor)
    return colors


def depths(graph: Graph, root: int = 0) -> list[int]:
    """Distance from the root, per node."""
    parent = root_tree(graph, root)
    depth = [0] * graph.n
    order = sorted(range(graph.n), key=lambda node: _depth_of(parent, node))
    for node in order:
        if parent[node] is not None:
            depth[node] = depth[parent[node]] + 1
    return depth


def _depth_of(parent: list[int | None], node: int) -> int:
    count = 0
    while parent[node] is not None:
        node = parent[node]
        count += 1
    return count
