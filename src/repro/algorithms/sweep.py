"""Color-class sweeps: from colorings to MIS and k-outdegree
dominating sets (the Section 1.1 upper-bound recipe).

Given a proper c-coloring, iterating over color classes and greedily
adding un-dominated nodes yields an MIS in c rounds.  Processing
*groups* of k+1 consecutive color classes at once yields a dominating
set whose induced edges connect only same-group nodes; on trees,
orienting them toward the parent bounds the outdegree by 1 <= k, so the
sweep computes a k-outdegree dominating set in ceil(c / (k+1)) rounds —
the Delta/k round scaling of the paper's upper-bound discussion, with
the rooting supplied as input (see DESIGN.md on this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.trees import orient_toward_parent
from repro.sim.graph import Graph
from repro.sim.runtime import Algorithm, NodeView, RunResult, run
from repro.robustness.errors import EngineMisuse


class GroupSweep(Algorithm):
    """Join the set in your group's round unless already dominated.

    Input: ``(group_index, group_count)``.  Output: bool (selected).
    """

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.group, self.group_count = view.input
        self.joined = False
        self.blocked = False
        self.round_index = 0
        if self.group_count == 0:
            self.halted = True

    def send(self) -> dict[int, object]:
        return {port: self.joined for port in range(self.view.degree)}

    def receive(self, messages: dict[int, object]) -> bool:
        # Messages carry neighbor decisions as of the previous rounds.
        if any(messages.values()):
            self.blocked = True
        if self.group == self.round_index and not self.blocked:
            self.joined = True
        self.round_index += 1
        return self.round_index >= self.group_count

    def output(self) -> bool:
        return self.joined


def run_mis_sweep(graph: Graph, colors: list[int], palette: int) -> RunResult:
    """MIS by sweeping single color classes (group size 1)."""
    inputs = [(colors[node], palette) for node in range(graph.n)]
    return run(graph, GroupSweep, model="PN", inputs=inputs)


@dataclass
class KodsSweepResult:
    """Outcome of the k-outdegree dominating-set sweep."""

    selected: set[int]
    orientation: dict[int, int]
    rounds: int
    groups: int


def run_kods_sweep(
    graph: Graph,
    colors: list[int],
    palette: int,
    k: int,
    root: int = 0,
) -> KodsSweepResult:
    """The Section 1.1 sweep: groups of k+1 colors, parent orientation.

    For ``k = 0`` this is exactly the MIS sweep.  For ``k >= 1`` the
    graph must be a tree (the rooting orients the induced edges).
    """
    if k < 0:
        raise EngineMisuse("k must be non-negative")
    group_size = k + 1
    group_count = (palette + group_size - 1) // group_size
    inputs = [(colors[node] // group_size, group_count) for node in range(graph.n)]
    result = run(graph, GroupSweep, model="PN", inputs=inputs)
    selected = {node for node in range(graph.n) if result.outputs[node]}
    if k == 0:
        orientation: dict[int, int] = {}
    else:
        parent_orientation = orient_toward_parent(graph, root)
        orientation = {
            edge_id: parent_orientation[edge_id]
            for edge_id, u, v in graph.edges()
            if u in selected and v in selected
        }
    return KodsSweepResult(
        selected=selected,
        orientation=orientation,
        rounds=result.rounds,
        groups=group_count,
    )
