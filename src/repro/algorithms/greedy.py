"""Sequential (centralized) baselines.

These are correctness oracles and size baselines for the distributed
algorithms, not contenders: a sequential sweep sees the whole graph.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.graph import Graph


def greedy_mis(graph: Graph, order: Sequence[int] | None = None) -> set[int]:
    """The lexicographically-first MIS along ``order`` (default: by id)."""
    ordering = list(order) if order is not None else range(graph.n)
    selected: set[int] = set()
    for node in ordering:
        if all(neighbor not in selected for neighbor in graph.neighbors(node)):
            selected.add(node)
    return selected


def greedy_coloring(graph: Graph, order: Sequence[int] | None = None) -> list[int]:
    """First-free greedy coloring: at most Delta + 1 colors."""
    ordering = list(order) if order is not None else range(graph.n)
    colors = [-1] * graph.n
    for node in ordering:
        taken = {colors[neighbor] for neighbor in graph.neighbors(node)}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def greedy_dominating_set(graph: Graph) -> set[int]:
    """A simple greedy dominating set: repeatedly take the node covering
    the most currently-uncovered nodes (the classic ln-n approximation)."""
    uncovered = set(range(graph.n))
    selected: set[int] = set()
    while uncovered:
        best = max(
            range(graph.n),
            key=lambda node: len(
                ({node} | set(graph.neighbors(node))) & uncovered
            ),
        )
        selected.add(best)
        uncovered -= {best} | set(graph.neighbors(best))
    return selected
