"""Luby's randomized MIS algorithm [34] (also Alon-Babai-Itai [1]).

Per phase (two communication rounds here): every undecided node draws a
random priority; a node whose priority strictly beats all undecided
neighbors joins the MIS, and its neighbors drop out.  With high
probability all nodes decide within O(log n) phases.

This is the permutation variant (random reals as priorities), which is
the cleanest to implement exactly; ties are broken by redrawing — with
64-bit randomness they essentially never occur.
"""

from __future__ import annotations

import random

from repro.sim.graph import Graph
from repro.sim.runtime import Algorithm, NodeView, RunResult, run


class LubyMIS(Algorithm):
    """Message-passing implementation of Luby's algorithm.

    Output is ``True`` for MIS members.  Each phase costs two rounds:
    one to exchange priorities, one to announce joins.
    """

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.state = "active"     # active | in | out
        self.phase = "priority"   # priority | announce
        self.priority = None
        self.active_ports = set(range(view.degree))

    def send(self) -> dict[int, object]:
        if self.phase == "priority":
            self.priority = self.view.rng.random()
            return {port: ("priority", self.priority) for port in self.active_ports}
        joined = self.state == "in"
        return {port: ("announce", joined) for port in self.active_ports}

    def receive(self, messages: dict[int, object]) -> bool:
        if self.phase == "priority":
            neighbor_priorities = [
                value for kind, value in messages.values() if kind == "priority"
            ]
            if all(self.priority > other for other in neighbor_priorities):
                self.state = "in"
            self.phase = "announce"
            return False
        # Announce phase: learn joins, retire ports of decided neighbors.
        for port, (kind, joined) in messages.items():
            if joined and self.state == "active":
                self.state = "out"
        # Neighbors that decided (joined or heard a join) stop sending;
        # track which ports are still active by who messaged this phase.
        self.active_ports = {
            port for port in self.active_ports if port in messages
        }
        done = self.state != "active"
        if done:
            return True
        self.phase = "priority"
        return False

    def output(self) -> bool:
        return self.state == "in"


def run_luby_mis(
    graph: Graph,
    seed: int = 0,
    max_rounds: int = 10_000,
    rng: random.Random | None = None,
) -> RunResult:
    """Run Luby's MIS on ``graph``; outputs are per-node booleans.

    All randomness flows from the injectable ``rng`` (or a fresh
    ``random.Random(seed)``) through the runtime's per-node streams —
    never the module-level global — so runs are reproducible.
    """
    return run(
        graph, LubyMIS, model="PN", seed=seed, rng=rng, max_rounds=max_rounds
    )
