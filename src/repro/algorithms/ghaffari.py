"""A Ghaffari-style MIS algorithm [22] (simplified).

Each undecided node maintains a desire level p_v, halved when the
neighborhood is too eager (sum of neighbor desires >= 2) and doubled
(capped at 1/2) otherwise.  A node marks itself with probability p_v;
lonely marked nodes join the MIS.  Ghaffari proves that nodes decide in
O(log Delta) + 2^O(sqrt(loglog n)) rounds w.h.p.; this implementation
reproduces the local dynamics exactly and the simulator measures the
actual round counts on trees (benchmark MIS-ALGS).
"""

from __future__ import annotations

import random

from repro.sim.graph import Graph
from repro.sim.runtime import Algorithm, NodeView, RunResult, run


class GhaffariMIS(Algorithm):
    """Message-passing implementation of the desire-level dynamics."""

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.state = "active"
        self.phase = "mark"
        self.desire = 0.5
        self.marked = False
        self.active_ports = set(range(view.degree))

    def send(self) -> dict[int, object]:
        if self.phase == "mark":
            self.marked = self.view.rng.random() < self.desire
            return {
                port: ("mark", self.marked, self.desire)
                for port in self.active_ports
            }
        return {
            port: ("announce", self.state == "in") for port in self.active_ports
        }

    def receive(self, messages: dict[int, object]) -> bool:
        if self.phase == "mark":
            neighbor_marked = any(
                marked for kind, marked, _ in messages.values()
            )
            desire_sum = sum(desire for kind, _, desire in messages.values())
            if self.marked and not neighbor_marked:
                self.state = "in"
            # Desire update (Ghaffari's rule).
            if desire_sum >= 2:
                self.desire = self.desire / 2
            else:
                self.desire = min(2 * self.desire, 0.5)
            self.phase = "announce"
            return False
        for port, (kind, joined) in messages.items():
            if joined and self.state == "active":
                self.state = "out"
        self.active_ports = {port for port in self.active_ports if port in messages}
        if self.state != "active":
            return True
        self.phase = "mark"
        return False

    def output(self) -> bool:
        return self.state == "in"


def run_ghaffari_mis(
    graph: Graph,
    seed: int = 0,
    max_rounds: int = 10_000,
    rng: random.Random | None = None,
) -> RunResult:
    """Run the Ghaffari-style MIS; outputs are per-node booleans.

    All randomness flows from the injectable ``rng`` (or a fresh
    ``random.Random(seed)``) through the runtime's per-node streams —
    never the module-level global — so runs are reproducible.
    """
    return run(
        graph,
        GhaffariMIS,
        model="PN",
        seed=seed,
        rng=rng,
        max_rounds=max_rounds,
    )
