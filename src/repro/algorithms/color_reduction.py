"""Linial-style color reduction and the slow one-color-per-round cleanup.

One *Linial step* [33] reduces a proper m-coloring to a proper
q^2-coloring in a single round, where q is the smallest prime with
``q >= d * Delta + 1`` and ``q^(d+1) >= m`` for the chosen degree d:
each color is encoded as a degree-<=d polynomial over F_q, and a node
picks an evaluation point where its polynomial differs from all
neighbors' polynomials (possible because two distinct degree-d
polynomials agree on at most d points and there are at most Delta
neighbors).  Iterating O(log* m) times lands at a palette of size
O(Delta^2 log Delta); the *slow reduction* then removes one color per
round down to Delta + 1.

Together with the identifiers as the initial poly(n)-coloring this
gives the deterministic O(Delta^2 + log* n)-ish coloring pipeline that
the sweep algorithms consume (a simplified stand-in for [10]'s
O(Delta + log* n), as recorded in DESIGN.md).
"""

from __future__ import annotations

import math

from repro.sim.graph import Graph
from repro.sim.runtime import Algorithm, NodeView, RunResult, run


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    for divisor in range(2, int(math.isqrt(value)) + 1):
        if value % divisor == 0:
            return False
    return True


def _next_prime(value: int) -> int:
    candidate = max(value, 2)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


def linial_parameters(m: int, delta: int) -> tuple[int, int]:
    """The (q, d) minimizing the new palette q^2 for one Linial step."""
    best: tuple[int, int] | None = None
    for degree in range(1, max(2, m.bit_length())):
        q = _next_prime(degree * delta + 1)
        while q ** (degree + 1) < m:
            q = _next_prime(q + 1)
        if best is None or q < best[0]:
            best = (q, degree)
    assert best is not None
    return best


def linial_palette_size(m: int, delta: int) -> int:
    """Palette size after one Linial step from an m-coloring."""
    q, _ = linial_parameters(m, delta)
    return q * q


def _encode_polynomial(color: int, q: int, degree: int) -> tuple[int, ...]:
    """The color written in base q as d+1 coefficients."""
    coefficients = []
    value = color
    for _ in range(degree + 1):
        coefficients.append(value % q)
        value //= q
    return tuple(coefficients)


def _evaluate(coefficients: tuple[int, ...], point: int, q: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * point + coefficient) % q
    return result


def linial_step_color(color: int, neighbor_colors: list[int], m: int, delta: int) -> int:
    """The new color of one node after a single Linial step."""
    q, degree = linial_parameters(m, delta)
    own = _encode_polynomial(color, q, degree)
    neighbors = [_encode_polynomial(other, q, degree) for other in neighbor_colors]
    for point in range(q):
        own_value = _evaluate(own, point, q)
        if all(
            other == own or _evaluate(other, point, q) != own_value
            for other in neighbors
        ):
            return point * q + own_value
    raise AssertionError(
        "no evaluation point found - parameters violate q > d * Delta"
    )


def reduction_schedule(m: int, delta: int) -> list[int]:
    """Palette sizes visited by iterated Linial steps (fixed point last)."""
    sizes = [m]
    while True:
        new_size = linial_palette_size(sizes[-1], delta)
        if new_size >= sizes[-1]:
            break
        sizes.append(new_size)
    return sizes


class LinialReduction(Algorithm):
    """Iterated Linial steps from the id coloring, LOCAL model."""

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.delta = view.delta
        self.color = view.id
        self.sizes = reduction_schedule(max(view.n, 2), max(view.delta, 1))
        self.step_index = 0
        if len(self.sizes) == 1:
            self.halted = True

    def send(self) -> dict[int, object]:
        return {port: self.color for port in range(self.view.degree)}

    def receive(self, messages: dict[int, object]) -> bool:
        m = self.sizes[self.step_index]
        self.color = linial_step_color(
            self.color, list(messages.values()), m, max(self.delta, 1)
        )
        self.step_index += 1
        return self.step_index == len(self.sizes) - 1

    def output(self) -> int:
        return self.color


def run_linial_reduction(graph: Graph) -> RunResult:
    """Reduce the id coloring to the Linial fixed-point palette."""
    return run(graph, LinialReduction, model="LOCAL")


class SlowColorReduction(Algorithm):
    """Remove one color per round: from m colors down to Delta + 1.

    Input: the node's current color (from a previous stage) and the
    palette size m, as the tuple ``(color, m)``.  In round i the nodes
    of color ``m - 1 - i`` re-pick the smallest color unused in their
    neighborhood (< Delta + 1 by counting); they form an independent
    set, so simultaneous re-picks are safe.
    """

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.color, self.palette = view.input
        self.target = view.delta + 1
        self.rounds_needed = max(self.palette - self.target, 0)
        self.round_index = 0
        if self.rounds_needed == 0:
            self.halted = True

    def send(self) -> dict[int, object]:
        return {port: self.color for port in range(self.view.degree)}

    def receive(self, messages: dict[int, object]) -> bool:
        retiring = self.palette - 1 - self.round_index
        if self.color == retiring:
            taken = set(messages.values())
            self.color = min(
                c for c in range(self.target) if c not in taken
            )
        self.round_index += 1
        return self.round_index == self.rounds_needed

    def output(self) -> int:
        return self.color


def run_slow_color_reduction(
    graph: Graph, colors: list[int], palette: int
) -> RunResult:
    """Reduce a proper ``palette``-coloring to Delta + 1 colors."""
    inputs = [(colors[node], palette) for node in range(graph.n)]
    return run(graph, SlowColorReduction, model="PN", inputs=inputs)


def run_full_coloring_pipeline(graph: Graph) -> tuple[list[int], int]:
    """Linial reduction then slow reduction: a (Delta+1)-coloring.

    Returns ``(colors, rounds_used)``.
    """
    linial = run_linial_reduction(graph)
    palette = reduction_schedule(max(graph.n, 2), max(graph.max_degree(), 1))[-1]
    slow = run_slow_color_reduction(graph, linial.outputs, palette)
    return slow.outputs, linial.rounds + slow.rounds
