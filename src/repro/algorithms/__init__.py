"""Distributed upper-bound algorithms (the other side of Theorem 1).

Everything the paper's Section 1.1 sketches is implemented and runs on
the simulator:

* sequential baselines (:mod:`repro.algorithms.greedy`) used as oracles;
* Luby's randomized MIS and a Ghaffari-style variant
  (:mod:`repro.algorithms.luby`, :mod:`repro.algorithms.ghaffari`);
* Cole-Vishkin 3-coloring of rooted trees and Linial-style color
  reduction (:mod:`repro.algorithms.cole_vishkin`,
  :mod:`repro.algorithms.color_reduction`);
* color-class sweeps turning colorings into MIS and into k-outdegree
  dominating sets in ~Delta/(k+1) phases
  (:mod:`repro.algorithms.sweep`);
* tree utilities (rooting, parent orientations)
  (:mod:`repro.algorithms.trees`).
"""

from repro.algorithms.greedy import (
    greedy_coloring,
    greedy_dominating_set,
    greedy_mis,
)
from repro.algorithms.luby import LubyMIS, run_luby_mis
from repro.algorithms.ghaffari import GhaffariMIS, run_ghaffari_mis
from repro.algorithms.cole_vishkin import ColeVishkinColoring, run_cole_vishkin
from repro.algorithms.color_reduction import (
    linial_palette_size,
    run_linial_reduction,
    run_slow_color_reduction,
)
from repro.algorithms.sweep import run_kods_sweep, run_mis_sweep
from repro.algorithms.trees import parent_ports, root_tree

__all__ = [
    "greedy_coloring",
    "greedy_dominating_set",
    "greedy_mis",
    "LubyMIS",
    "run_luby_mis",
    "GhaffariMIS",
    "run_ghaffari_mis",
    "ColeVishkinColoring",
    "run_cole_vishkin",
    "linial_palette_size",
    "run_linial_reduction",
    "run_slow_color_reduction",
    "run_kods_sweep",
    "run_mis_sweep",
    "parent_ports",
    "root_tree",
]
