"""Cole-Vishkin 3-coloring of rooted trees in O(log* n) rounds.

The classic deterministic symmetry-breaking algorithm: starting from
the unique identifiers (an n-coloring), each step replaces a node's
color by (index, bit) of the lowest bit where it differs from its
parent's color, shrinking the palette from m to 2 * ceil(log2 m); after
O(log* n) steps the palette is {0..5}, and three shift-down/recolor
steps remove colors 5, 4, 3.  Every node knows its parent port as
input (the rooted-tree setting of [7, 33]); ids require the LOCAL
model.

The round count is exactly ``cv_iterations(n) + 6``, which the
benchmarks compare against log*(n).
"""

from __future__ import annotations

from repro.sim.graph import Graph
from repro.sim.runtime import Algorithm, NodeView, RunResult, run
from repro.algorithms.trees import parent_ports


def cv_iterations(n: int) -> int:
    """Number of color-reduction steps until the palette is {0..5}."""
    palette = max(n, 2)
    count = 0
    while palette > 6:
        bits = (palette - 1).bit_length()
        palette = 2 * bits
        count += 1
    return count


class ColeVishkinColoring(Algorithm):
    """The full pipeline: CV reduction, then 6 -> 3 shift-down steps.

    Input: the node's parent port (``None`` at the root).  Output: a
    color in {0, 1, 2}.
    """

    def init(self, view: NodeView) -> None:
        super().init(view)
        self.parent_port = view.input
        self.color = view.id  # initial n-coloring from identifiers
        self.schedule = ["cv"] * cv_iterations(view.n)
        for target in (5, 4, 3):
            self.schedule.extend(["shift", ("recolor", target)])
        self.step_index = 0
        if not self.schedule:
            self.schedule = []
        if view.n == 1:
            self.color = 0
            self.halted = True

    def send(self) -> dict[int, object]:
        return {port: self.color for port in range(self.view.degree)}

    def receive(self, messages: dict[int, object]) -> bool:
        step = self.schedule[self.step_index]
        parent_color = (
            messages.get(self.parent_port) if self.parent_port is not None else None
        )
        child_colors = [
            color for port, color in messages.items() if port != self.parent_port
        ]
        if step == "cv":
            self.color = _cv_step(self.color, parent_color)
        elif step == "shift":
            if parent_color is not None:
                self.color = parent_color
            else:
                self.color = (self.color + 1) % 6
        else:
            _, target = step
            if self.color == target:
                taken = set(child_colors)
                if parent_color is not None:
                    taken.add(parent_color)
                self.color = min(c for c in (0, 1, 2) if c not in taken)
        self.step_index += 1
        return self.step_index == len(self.schedule)

    def output(self) -> int:
        return self.color


def _cv_step(color: int, parent_color: int | None) -> int:
    """One Cole-Vishkin reduction: (lowest differing bit index, bit)."""
    other = parent_color if parent_color is not None else color ^ 1
    difference = color ^ other
    index = (difference & -difference).bit_length() - 1
    bit = (color >> index) & 1
    return 2 * index + bit


def run_cole_vishkin(graph: Graph, root: int = 0) -> RunResult:
    """Root the tree, hand out parent ports, and run the pipeline."""
    inputs = parent_ports(graph, root)
    return run(graph, ColeVishkinColoring, model="LOCAL", inputs=inputs)
