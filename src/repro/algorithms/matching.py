"""Maximal matching via MIS on the line graph (Sec. 1, Sec. 1.1).

A maximal matching of G is exactly an MIS of L(G).  A LOCAL algorithm
on L(G) can be simulated on G with constant overhead (each G-edge's
computation is hosted by one endpoint); here the simulation is played
centrally — build L(G), run the MIS algorithm, map back — and the
result is re-verified as a maximal matching of G.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.luby import run_luby_mis
from repro.sim.graph import Graph
from repro.sim.transform import (
    is_maximal_matching,
    line_graph,
    matching_from_line_graph_mis,
)


@dataclass
class MatchingResult:
    """A maximal matching with provenance."""

    edges: set[int]
    rounds: int
    line_nodes: int

    def covered_nodes(self, graph: Graph) -> set[int]:
        """The nodes touched by the matching."""
        covered: set[int] = set()
        for edge_id in self.edges:
            u, _, v, _ = graph.endpoints(edge_id)
            covered.add(u)
            covered.add(v)
        return covered


def run_maximal_matching(graph: Graph, seed: int = 0) -> MatchingResult:
    """Luby's MIS on L(G), mapped back to a maximal matching of G.

    The reported round count is the MIS round count on L(G); the
    G-side simulation would add a constant factor of 2.
    """
    line = line_graph(graph)
    result = run_luby_mis(line.graph, seed=seed)
    mis = {node for node in range(line.graph.n) if result.outputs[node]}
    matching = matching_from_line_graph_mis(graph, line, mis)
    if not is_maximal_matching(graph, matching):
        raise AssertionError("line-graph MIS did not map to a maximal matching")
    return MatchingResult(
        edges=matching, rounds=result.rounds, line_nodes=line.graph.n
    )


def matching_size_lower_bound(graph: Graph) -> int:
    """Every maximal matching has at least m / (2 * Delta - 1) edges.

    Each matched edge can block at most 2 * (Delta - 1) others, itself
    included that is 2 * Delta - 1 per matched edge.
    """
    if graph.m == 0:
        return 0
    return max(graph.m // (2 * graph.max_degree() - 1), 1)
