"""Round elimination as a service: HTTP API over an async job runner.

The package turns the in-process pipeline into a long-running,
zero-dependency server.  A submitted job names either a registered
scenario or an inline problem plus a chain request; the orchestrator
runs it through the exact same ambient machinery an in-process caller
would use — ``governed()`` budgets, the renaming-invariant
``caching()`` operator cache, ``tracing()`` spans streamed live — and
dedups isomorphic submissions by their canonical fingerprint, so two
clients asking for the same chain under different label names cost one
computation.  Job state persists through sealed checkpoints: a killed
server resumes unfinished jobs and re-serves finished ones
byte-identically.

* :mod:`repro.service.wire` — request/record/result wire formats.
* :mod:`repro.service.jobs` — job records and the sealed job store.
* :mod:`repro.service.orchestrator` — worker threads, dedup, budgets.
* :mod:`repro.service.api` — the HTTP endpoints.

Start a server with ``python -m tools.serve`` or in-process::

    from repro.service import ReproService
    with ReproService("/tmp/jobs", port=0) as service:
        print(service.url)
"""

from repro.service.api import ReproService, job_document
from repro.service.jobs import JobRecord, JobStore, new_job_id
from repro.service.orchestrator import (
    LockedOperatorCache,
    Orchestrator,
    StreamingTracer,
    computation_key,
    resolve_request,
)
from repro.service.wire import (
    BUDGET_FIELDS,
    ENGINES,
    INLINE_OPERATORS,
    JOB_STATES,
    POLICIES,
    JobRequest,
    parse_job_request,
    render_job_request,
    render_result,
)

__all__ = [
    "INLINE_OPERATORS",
    "POLICIES",
    "ENGINES",
    "BUDGET_FIELDS",
    "JOB_STATES",
    "JobRequest",
    "parse_job_request",
    "render_job_request",
    "render_result",
    "JobRecord",
    "JobStore",
    "new_job_id",
    "StreamingTracer",
    "LockedOperatorCache",
    "Orchestrator",
    "computation_key",
    "resolve_request",
    "ReproService",
    "job_document",
]
