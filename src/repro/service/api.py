"""The HTTP surface of the round-elimination service.

Zero-dependency by construction: a stdlib
:class:`~http.server.ThreadingHTTPServer` in front of the
:class:`~repro.service.orchestrator.Orchestrator`, speaking plain JSON
rendered through :func:`repro.core.io.canonical_json` — so every body
is deterministic down to the byte, which is what lets the restart tests
assert *byte-identical* re-serving of completed jobs.

Endpoints (all under ``/v1``):

=========================  ======================================
``GET  /v1/healthz``       liveness + job totals by state
``GET  /v1/scenarios``     the scenario registry, registry order
``POST /v1/jobs``          submit a job (``202`` + job document)
``GET  /v1/jobs/<id>``     job document (``422`` once ``failed``)
``GET  /v1/jobs/<id>/events``  JSON-lines live trace/event stream
=========================  ======================================

Error mapping: a malformed body or an invalid request
(:class:`~repro.robustness.errors.InvalidJobRequest`,
``InvalidScenario``, ``InvalidProblem``) is a ``400`` whose body is the
structured :func:`repro.service.wire.render_error` document; an unknown
job or path is a ``404``; a job that *ran* and failed — budget trips
included — keeps its structured error inside the job document and is
served with ``422``.  The server never maps an engine failure to a
``5xx``: typed errors are part of the API, not crashes.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.io import canonical_json
from repro.observability.trace import Tracer
from repro.robustness.errors import (
    InvalidJobRequest,
    InvalidProblem,
    InvalidScenario,
)
from repro.scenarios import describe_registry
from repro.service import wire
from repro.service.jobs import JobRecord
from repro.service.orchestrator import Orchestrator

#: Request flaws that map to a ``400`` with a structured error body.
_BAD_REQUEST = (InvalidJobRequest, InvalidScenario, InvalidProblem)

#: How long one events-poll blocks before re-checking for new records.
_STREAM_POLL_SECONDS = 1.0


def job_document(record: JobRecord) -> dict:
    """The JSON document ``GET /v1/jobs/<id>`` serves.

    Deliberately identical to the sealed persistence payload
    (:func:`repro.service.wire.encode_job`): what the store round-trips
    is exactly what the API serves, so a restarted server re-serves a
    completed job byte-for-byte.
    """
    return wire.encode_job(record)


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; the orchestrator hangs off the server."""

    server: "_Server"  # narrowed from BaseServer for route handlers

    # RL007: the server must not write to stdout/stderr; request logging
    # is the orchestrator's tracer's job.
    def log_message(self, format: str, *args: object) -> None:
        pass

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, payload: object) -> None:
        body = (canonical_json(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, status: int, error: Exception) -> None:
        if isinstance(error, _BAD_REQUEST):
            self._send_json(status, wire.render_error(error))
        else:
            self._send_json(
                status,
                {"type": type(error).__name__, "message": str(error),
                 "context": {}},
            )

    def _not_found(self, what: str) -> None:
        self._send_json(
            404, {"type": "NotFound", "message": what, "context": {}}
        )

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/v1/healthz":
                self._send_json(200, {
                    "ok": True,
                    "jobs": self.server.orchestrator.counts(),
                    "resumed": self.server.orchestrator.resumed_jobs,
                })
            elif path == "/v1/scenarios":
                self._send_json(200, {"scenarios": describe_registry()})
            elif path.startswith("/v1/jobs/") and path.endswith("/events"):
                self._stream_events(path[len("/v1/jobs/"):-len("/events")])
            elif path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):])
            else:
                self._not_found(f"no route {path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def do_POST(self) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/v1/jobs":
                self._not_found(f"no route {path!r}")
                return
            self._submit_job()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _submit_job(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_body(
                400, InvalidJobRequest(f"request body is not JSON: {error}")
            )
            return
        try:
            request = wire.parse_job_request(payload)
            record = self.server.orchestrator.submit(request)
        except _BAD_REQUEST as error:
            self._send_error_body(400, error)
            return
        self._send_json(202, job_document(record))

    def _get_job(self, job_id: str) -> None:
        record = self.server.orchestrator.get(job_id)
        if record is None:
            self._not_found(f"no job {job_id!r}")
            return
        status = 422 if record.state == "failed" else 200
        self._send_json(status, job_document(record))

    def _stream_events(self, job_id: str) -> None:
        """Serve the live event stream as close-delimited JSON lines.

        HTTP/1.0 semantics: no ``Content-Length``, the connection close
        ends the stream.  The stream ends once the job is terminal and
        every event has been delivered — the last line is always the
        terminal ``job.state`` event.
        """
        orchestrator = self.server.orchestrator
        if orchestrator.get(job_id) is None:
            self._not_found(f"no job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        start = 0
        while True:
            events, finished = orchestrator.events_since(
                job_id, start, timeout=_STREAM_POLL_SECONDS
            )
            for event in events:
                self.wfile.write(
                    (canonical_json(event) + "\n").encode("utf-8")
                )
            if events:
                self.wfile.flush()
            start += len(events)
            if finished:
                return


class _Server(ThreadingHTTPServer):
    """The listening socket plus the orchestrator the handlers use."""

    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], orchestrator: Orchestrator
    ) -> None:
        self.orchestrator = orchestrator
        super().__init__(address, _Handler)


class ReproService:
    """One service instance: orchestrator, HTTP server, serving thread.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction) — the test harness and the CLI smoke mode both rely
    on that.  The object is also a context manager: ``with
    ReproService(tmp) as service: ...`` starts on entry and stops on
    exit.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        master: Tracer | None = None,
    ) -> None:
        self.orchestrator = Orchestrator(
            directory, workers=workers, master=master
        )
        self._server = _Server((host, port), self.orchestrator)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._started = False

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._server.server_name

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with 0)."""
        return self._server.server_port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "ReproService":
        """Start serving; returns ``self`` for chaining."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def stop(self) -> None:
        """Stop accepting, close the socket, drain the workers."""
        self._server.shutdown()
        self._server.server_close()
        self.orchestrator.shutdown()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["job_document", "ReproService"]
