"""The service wire formats: job requests, records, and result bodies.

Everything the HTTP layer reads or writes passes through this module,
so the on-the-wire shapes have exactly one definition and two invariant
pairs, both property-tested (``tests/test_service_store.py``) the same
way the ``.scn`` spec format is:

* :func:`parse_job_request` / :func:`render_job_request` — a canonical
  round trip: ``parse(render(request)) == request`` for every valid
  :class:`JobRequest`, and ``render`` omits defaulted fields so the
  canonical document is minimal.
* :func:`encode_job` / :func:`decode_job` — the sealed persistence
  codec: a :class:`~repro.service.jobs.JobRecord` survives a trip
  through the :class:`~repro.robustness.checkpointing.CheckpointStore`
  unchanged, which is what makes a restarted server re-serve completed
  jobs byte-identically.

A job request names either a registered scenario (``{"scenario":
"<name>"}`` — operator, steps, and policy come from the spec and may
not be overridden) or an inline problem (``{"problem": "<text>",
"operator": ..., "steps": ...}`` in the round-eliminator text format of
:func:`repro.core.io.problem_from_text`).  Optional fields select the
engine (``reference`` or ``kernel``, plus ``workers`` for the parallel
kernel) and attach a per-job budget whose keys mirror
:class:`repro.robustness.budget.Budget`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.labels import render_label
from repro.core.problem import Problem
from repro.robustness.errors import InvalidJobRequest, ReproError

if TYPE_CHECKING:  # circular at runtime: jobs.py imports this module
    from repro.service.jobs import JobRecord

#: Chain operators an inline job may request (``lemma13`` is spec-only:
#: it is parameterized by ``(delta, x)``, not by a problem).
INLINE_OPERATORS = ("speedup", "self-reduce")

#: Zero-round verification policies (mirrors the ``.scn`` format).
POLICIES = ("pn", "symmetric")

#: Engines a job may run on.
ENGINES = ("reference", "kernel")

#: Budget fields a request may set, mirroring ``robustness.Budget``.
BUDGET_FIELDS = (
    "wall_clock_seconds",
    "max_alphabet",
    "max_configurations",
    "max_chain_steps",
)

#: Terminal and non-terminal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobRequest:
    """One parsed job submission.

    Exactly one of ``scenario`` / ``problem`` is set; ``operator``,
    ``steps``, and ``policy`` are only set for inline problems (spec
    runs take them from the registered ``.scn`` file).
    """

    scenario: str | None = None    #: registered scenario name
    problem: str | None = None     #: inline problem, text format
    operator: str | None = None    #: one of :data:`INLINE_OPERATORS`
    steps: int | None = None       #: chain steps for an inline problem
    policy: str = "pn"             #: one of :data:`POLICIES`
    engine: str = "reference"      #: one of :data:`ENGINES`
    workers: int | None = None     #: parallel kernel workers
    budget: dict[str, float] = field(default_factory=dict)


def _require_type(value: Any, kind: type, key: str) -> Any:
    if not isinstance(value, kind) or isinstance(value, bool):
        raise InvalidJobRequest(
            f"key {key!r} must be {kind.__name__}, got {value!r}"
        )
    return value


def parse_job_request(payload: object) -> JobRequest:
    """Parse a submitted JSON document into a :class:`JobRequest`.

    Raises :class:`InvalidJobRequest` on any flaw: unknown keys, both
    or neither of scenario/problem, chain fields on a scenario run,
    missing chain fields on an inline run, or invalid engine/budget
    fields.
    """
    if not isinstance(payload, dict):
        raise InvalidJobRequest(
            f"job request must be a JSON object, got {type(payload).__name__}"
        )
    known = {
        "scenario", "problem", "operator", "steps", "policy",
        "engine", "workers", "budget",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise InvalidJobRequest(f"unknown request keys: {unknown}")
    scenario = payload.get("scenario")
    problem = payload.get("problem")
    if (scenario is None) == (problem is None):
        raise InvalidJobRequest(
            "a job names exactly one of 'scenario' or 'problem'"
        )
    operator: str | None = None
    steps: int | None = None
    policy = "pn"
    if scenario is not None:
        _require_type(scenario, str, "scenario")
        for key in ("operator", "steps", "policy"):
            if key in payload:
                raise InvalidJobRequest(
                    f"scenario jobs take {key!r} from the registered spec; "
                    "drop it from the request",
                    scenario=scenario,
                )
    else:
        _require_type(problem, str, "problem")
        if "operator" not in payload or "steps" not in payload:
            raise InvalidJobRequest(
                "inline-problem jobs must set 'operator' and 'steps'"
            )
        operator = _require_type(payload["operator"], str, "operator")
        if operator not in INLINE_OPERATORS:
            raise InvalidJobRequest(
                f"unknown operator {operator!r} "
                f"(known: {', '.join(INLINE_OPERATORS)})"
            )
        steps = _require_type(payload["steps"], int, "steps")
        if steps < 0:
            raise InvalidJobRequest("steps must be non-negative", steps=steps)
        policy = _require_type(payload.get("policy", "pn"), str, "policy")
        if policy not in POLICIES:
            raise InvalidJobRequest(
                f"unknown policy {policy!r} (known: {', '.join(POLICIES)})"
            )
    engine = _require_type(payload.get("engine", "reference"), str, "engine")
    if engine not in ENGINES:
        raise InvalidJobRequest(
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    workers = payload.get("workers")
    if workers is not None:
        _require_type(workers, int, "workers")
        if workers < 1:
            raise InvalidJobRequest("workers must be >= 1", workers=workers)
        if engine != "kernel":
            raise InvalidJobRequest("workers requires the kernel engine")
    budget_raw = payload.get("budget", {})
    _require_type(budget_raw, dict, "budget")
    budget: dict[str, float] = {}
    for key in sorted(budget_raw):
        if key not in BUDGET_FIELDS:
            raise InvalidJobRequest(
                f"unknown budget field {key!r} "
                f"(known: {', '.join(BUDGET_FIELDS)})"
            )
        value = budget_raw[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise InvalidJobRequest(
                f"budget field {key!r} must be a number, got {value!r}"
            )
        if value <= 0:
            raise InvalidJobRequest(
                f"budget field {key!r} must be positive", **{key: value}
            )
        budget[key] = int(value) if key != "wall_clock_seconds" else float(value)
    return JobRequest(
        scenario=scenario,
        problem=problem,
        operator=operator,
        steps=steps,
        policy=policy,
        engine=engine,
        workers=workers,
        budget=budget,
    )


def render_job_request(request: JobRequest) -> dict:
    """The canonical document form (omits defaulted fields)."""
    document: dict[str, object] = {}
    if request.scenario is not None:
        document["scenario"] = request.scenario
    else:
        document["problem"] = request.problem
        document["operator"] = request.operator
        document["steps"] = request.steps
        if request.policy != "pn":
            document["policy"] = request.policy
    if request.engine != "reference":
        document["engine"] = request.engine
    if request.workers is not None:
        document["workers"] = request.workers
    if request.budget:
        document["budget"] = {
            key: request.budget[key] for key in sorted(request.budget)
        }
    return document


# ---------------------------------------------------------------------------
# Result and error bodies
# ---------------------------------------------------------------------------

def render_problem(problem: Problem) -> dict:
    """A JSON-safe, deterministic rendering of one chain iterate.

    Labels render through :func:`repro.core.labels.render_label` (set
    labels become bracketed strings), constraints as sorted
    configuration rows — the same conventions as the text format, so
    the document is stable across runs, engines, and cache hits.
    """
    return {
        "name": problem.name,
        "delta": problem.delta,
        "alphabet": [render_label(label) for label in problem.alphabet],
        "node": sorted(
            configuration.render()
            for configuration in problem.node_constraint.configurations
        ),
        "edge": sorted(
            configuration.render()
            for configuration in problem.edge_constraint.configurations
        ),
    }


def render_result(
    problems: list[Problem],
    reached_fixed_point: bool,
    certified_rounds: int,
    failures: list[str],
) -> dict:
    """The result body of a completed job.

    The exact same function renders in-process
    :class:`~repro.scenarios.runner.ScenarioRun` outcomes in the
    differential service tests, so "the wire path equals the in-process
    path" is equality of these documents.
    """
    return {
        "ok": not failures,
        "steps": len(problems) - 1,
        "certified_rounds": certified_rounds,
        "reached_fixed_point": reached_fixed_point,
        "failures": list(failures),
        "alphabet_sizes": [len(problem.alphabet) for problem in problems],
        "problems": [render_problem(problem) for problem in problems],
    }


def json_safe(value: object) -> object:
    """Recursively coerce a value into JSON-safe primitives.

    Trace record attributes may carry arbitrary engine objects (label
    frozensets in budget-trip contexts, for instance); persistence and
    the event stream both need plain JSON, so anything unrecognized is
    rendered through ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return str(value)


def render_error(error: ReproError) -> dict:
    """The structured error body of a failed job or rejected request."""
    return {
        "type": type(error).__name__,
        "message": error.message,
        "context": json_safe(error.context),
    }


# ---------------------------------------------------------------------------
# Job record persistence codec
# ---------------------------------------------------------------------------

def encode_job(record: "JobRecord") -> dict:
    """The sealed-checkpoint payload of one job record."""
    return {
        "job_id": record.job_id,
        "request": render_job_request(record.request),
        "key": record.key,
        "state": record.state,
        "deduped": record.deduped,
        "deduped_from": record.deduped_from,
        "result": record.result,
        "error": record.error,
        "counters": dict(record.counters),
        "events": list(record.events),
    }


def decode_job(payload: object) -> "JobRecord":
    """Rebuild a :class:`~repro.service.jobs.JobRecord` from its payload.

    Raises :class:`InvalidJobRequest` when the payload is not a record
    this codec wrote — the job store treats that exactly like a failed
    integrity seal (evict, count, continue).
    """
    from repro.service.jobs import JobRecord

    if not isinstance(payload, dict):
        raise InvalidJobRequest("job record payload is not an object")
    missing = [
        key
        for key in ("job_id", "request", "key", "state")
        if key not in payload
    ]
    if missing:
        raise InvalidJobRequest(f"job record is missing keys: {missing}")
    state = payload["state"]
    if state not in JOB_STATES:
        raise InvalidJobRequest(f"unknown job state {state!r}")
    return JobRecord(
        job_id=_require_type(payload["job_id"], str, "job_id"),
        request=parse_job_request(payload["request"]),
        key=_require_type(payload["key"], str, "key"),
        state=state,
        deduped=bool(payload.get("deduped", False)),
        deduped_from=payload.get("deduped_from"),
        result=payload.get("result"),
        error=payload.get("error"),
        counters=dict(payload.get("counters", {})),
        events=list(payload.get("events", [])),
    )


__all__ = [
    "INLINE_OPERATORS",
    "POLICIES",
    "ENGINES",
    "BUDGET_FIELDS",
    "JOB_STATES",
    "JobRequest",
    "parse_job_request",
    "render_job_request",
    "render_problem",
    "render_result",
    "render_error",
    "json_safe",
    "encode_job",
    "decode_job",
]
