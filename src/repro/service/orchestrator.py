"""The async job orchestrator: worker threads over the governed engine.

Submissions resolve to a *computation key* — chain operator, step
count, zero-round policy, and the renaming-invariant operator-cache
fingerprint of the base problem — before they are queued, so two
requests for isomorphic problems (however their labels are spelled)
carry the same key.  Execution then dedups on that key at three
levels:

* **in-flight** — a job whose key is currently being computed waits
  for the primary instead of starting a second computation;
* **completed** — a job whose key already finished replays through the
  warm operator cache (every ``R``/``Rbar``/condense/verdict call is a
  cache hit, transported into the submission's own label coordinates
  by :mod:`repro.core.cache`), so the duplicate costs bookkeeping, not
  computation, and its result arrives in its own coordinates;
* **restart** — the shared cache has an on-disk tier under the job
  directory, so replay-dedup survives a server restart too.

Every job runs inside ``tracing(...)``/``caching(...)``/``governed(...)``
exactly like an in-process run: a per-job :class:`StreamingTracer`
feeds the live events endpoint, the per-job
:class:`~repro.robustness.budget.Budget` comes from the request, and a
typed failure (``BudgetExceeded`` and friends) becomes a structured
error body, never a dead worker.  Job state persists through the
sealed :class:`~repro.service.jobs.JobStore` at every transition, so a
killed server resumes queued/running jobs and re-serves completed ones
byte-identically on restart.

Ambient contexts are :class:`~contextvars.ContextVar`-based and do
*not* propagate into new threads — each worker installs its own
tracing/caching/governed stack per job, which is exactly the isolation
a multi-tenant job runner wants.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable
from pathlib import Path

from repro.core.cache import OperatorCache, caching, fingerprint
from repro.core.io import problem_from_text
from repro.core.problem import Problem
from repro.observability import trace as _trace
from repro.observability.metrics import total_counters
from repro.observability.trace import SpanHandle, Tracer, tracing
from repro.robustness.budget import Budget, governed
from repro.robustness.errors import InvalidJobRequest, ReproError
from repro.scenarios import (
    build_problem,
    find_scenario,
    run_problem_chain,
    run_scenario,
)
from repro.service import wire
from repro.service.jobs import JobRecord, JobStore, new_job_id
from repro.service.wire import JobRequest

#: How long a deduped job waits for its in-flight primary before
#: re-checking.  The primary always settles — its runner persists a
#: terminal state in a ``finally`` — so this only bounds one wait.
_WAIT_POLL_SECONDS = 1.0


def _safe_record(record: dict) -> dict:
    return {str(key): wire.json_safe(value) for key, value in record.items()}


class StreamingTracer(Tracer):
    """A tracer that pushes every finished record to a sink, live.

    The sink receives span records as their spans close and event
    records as they fire — already JSON-sanitized — which is what the
    ``GET /v1/jobs/<id>/events`` endpoint streams while the job runs.
    """

    def __init__(
        self, sink: Callable[[dict], None], *, trace_checkpoints: bool = False
    ) -> None:
        self._sink = sink
        super().__init__(trace_checkpoints=trace_checkpoints)

    def _close_span(
        self, handle: SpanHandle, status: str, error: str | None = None
    ) -> None:
        already = len(self.records)
        super()._close_span(handle, status, error)
        for record in self.records[already:]:
            self._sink(_safe_record(record))

    def event(self, name: str, **attrs: object) -> None:
        super().event(name, **attrs)
        self._sink(_safe_record(self.records[-1]))


class LockedOperatorCache(OperatorCache):
    """An :class:`OperatorCache` safe to share across worker threads.

    The base class is single-threaded by design (its LRU bookkeeping
    interleaves reads and writes); the orchestrator's workers all hit
    one shared store, so the public surface takes a lock.
    """

    def __init__(
        self, directory: str | Path | None = None, *, max_entries: int = 4096
    ) -> None:
        self._lock = threading.Lock()
        super().__init__(directory, max_entries=max_entries)

    def lookup(self, key: str) -> dict | None:
        with self._lock:
            return super().lookup(key)

    def store(self, key: str, payload: dict) -> None:
        with self._lock:
            super().store(key, payload)


def resolve_request(request: JobRequest) -> tuple[Problem, str, int, str]:
    """``(base_problem, operator, steps, policy)`` of a parsed request.

    Scenario requests resolve through the registry (raising
    :class:`~repro.robustness.errors.InvalidScenario` for unknown
    names); inline requests parse their problem text (raising
    :class:`~repro.robustness.errors.InvalidProblem` on malformed
    input).  Either failure surfaces at submission time as a 4xx,
    never as a queued job.
    """
    if request.scenario is not None:
        _, spec = find_scenario(request.scenario)
        return build_problem(spec), spec.operator, spec.steps, spec.policy
    assert request.problem is not None  # parse_job_request guarantees it
    assert request.operator is not None and request.steps is not None
    problem = problem_from_text(request.problem, name="inline")
    return problem, request.operator, request.steps, request.policy


def computation_key(request: JobRequest) -> str:
    """The renaming-invariant dedup key of a request.

    Two requests share a key exactly when they ask for the same chain
    (operator, steps, policy) on isomorphic base problems — the
    fingerprint is the operator cache's canonical-form digest, so label
    renamings do not split the key.  The engine is deliberately *not*
    part of the key: both engines return identical results by contract
    (the differential oracle enforces it), so a kernel submission may
    dedup against a reference computation and vice versa.
    """
    problem, operator, steps, policy = resolve_request(request)
    return f"{operator}-{steps}-{policy}-{fingerprint(problem)}"


class Orchestrator:
    """Worker threads draining a job queue over one shared cache."""

    def __init__(
        self,
        directory: str | Path,
        *,
        workers: int = 2,
        master: Tracer | None = None,
    ) -> None:
        if workers < 1:
            raise InvalidJobRequest(
                "the orchestrator needs at least one worker", workers=workers
            )
        self.directory = Path(directory)
        self.store = JobStore(self.directory)
        self.cache = LockedOperatorCache(self.directory / "opcache")
        self._master = master
        self._master_lock = threading.Lock()
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._lock = threading.Lock()
        self._events = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._active: dict[str, str] = {}      # computation key -> running job
        self._completed: dict[str, str] = {}   # computation key -> done job
        self._terminal: dict[str, threading.Event] = {}
        self._resumed: set[str] = set()
        self._recover()
        self._workers = [
            threading.Thread(
                target=self._worker,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle -------------------------------------------------------

    def _recover(self) -> None:
        """Adopt persisted jobs: re-serve finished ones, re-run the rest."""
        for record in self.store.load_all():
            self._jobs[record.job_id] = record
            event = threading.Event()
            if record.terminal:
                event.set()
                if record.state == "done" and not record.deduped:
                    self._completed.setdefault(record.key, record.job_id)
            else:
                # Queued or mid-run at kill time: run again from scratch.
                # The operators replay through the on-disk cache tier, so
                # completed work is not recomputed, only re-assembled.
                record.state = "queued"
                record.deduped = False
                record.deduped_from = None
                record.result = None
                record.error = None
                record.counters = {}
                record.events = []
                self.store.save(record)
                self._resumed.add(record.job_id)
                self._queue.put(record.job_id)
            self._terminal[record.job_id] = event

    @property
    def resumed_jobs(self) -> int:
        """How many non-terminal jobs the startup recovery re-queued."""
        return len(self._resumed)

    def shutdown(self) -> None:
        """Stop the workers after their current jobs finish.

        Queued jobs stay persisted as ``queued`` and are resumed by the
        next server that opens the same job directory.
        """
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=30.0)

    # -- submission and lookup -------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Validate, persist, and enqueue one job; returns its record.

        Resolution failures (unknown scenario, malformed inline
        problem) raise immediately — the caller maps them to a 4xx —
        so everything that reaches the queue can actually run.
        """
        key = computation_key(request)
        record = JobRecord(job_id=new_job_id(), request=request, key=key)
        with self._lock:
            self._jobs[record.job_id] = record
            self._terminal[record.job_id] = threading.Event()
        self.store.save(record)
        self._queue.put(record.job_id)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        """The record of ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        """Job totals by state (the health endpoint body)."""
        with self._lock:
            totals = dict.fromkeys(wire.JOB_STATES, 0)
            for record in self._jobs.values():
                totals[record.state] += 1
        return totals

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until ``job_id`` is terminal; ``True`` when it is."""
        event = self._terminal.get(job_id)
        if event is None:
            return False
        return event.wait(timeout)

    # -- event streaming ---------------------------------------------------

    def events_since(
        self, job_id: str, start: int, timeout: float = 10.0
    ) -> tuple[list[dict], bool]:
        """``(new_events, finished)`` for a streaming consumer.

        Blocks up to ``timeout`` for news past index ``start``;
        ``finished`` is true once the job is terminal and every event
        up to ``start + len(new_events)`` has been delivered.
        """
        with self._events:
            record = self._jobs.get(job_id)
            if record is None:
                return [], True
            if len(record.events) <= start and not record.terminal:
                self._events.wait(timeout)
            fresh = [dict(event) for event in record.events[start:]]
            finished = (
                record.terminal and start + len(fresh) >= len(record.events)
            )
        return fresh, finished

    def _push_event(self, record: JobRecord, event: dict) -> None:
        with self._events:
            record.events.append(event)
            self._events.notify_all()

    # -- execution ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            record = self.get(job_id)
            if record is None or record.terminal:
                continue
            self._run_job(record)

    def _set_state(self, record: JobRecord, state: str) -> None:
        with self._events:
            record.state = state
            self._events.notify_all()
        self._push_event(
            record, {"type": "job.state", "job": record.job_id, "state": state}
        )

    def _claim(self, record: JobRecord) -> JobRecord | None:
        """Dedup arbitration: the completed record to replay, or ``None``.

        ``None`` means this job *is* the primary and must compute.  A
        returned record is a terminal ``done`` job with the same key —
        the caller replays through the warm cache.  While the key is
        held by a running primary, this blocks until that primary
        settles; a failed primary does not poison the key (the next
        claimant simply becomes the new primary and computes fresh).
        """
        while True:
            with self._lock:
                active_id = self._active.get(record.key)
                if active_id is None:
                    done_id = self._completed.get(record.key)
                    if done_id is not None:
                        return self._jobs[done_id]
                    self._active[record.key] = record.job_id
                    return None
                waiter = self._terminal[active_id]
            waiter.wait(_WAIT_POLL_SECONDS)

    def _release(self, record: JobRecord) -> None:
        with self._lock:
            if self._active.get(record.key) == record.job_id:
                del self._active[record.key]
            if record.state == "done" and not record.deduped:
                self._completed.setdefault(record.key, record.job_id)
        self._terminal[record.job_id].set()

    def _run_job(self, record: JobRecord) -> None:
        tracer = StreamingTracer(
            lambda event: self._push_event(record, event)
        )
        self._set_state(record, "running")
        self.store.save(record)
        try:
            with tracing(tracer):
                with _trace.span(
                    "service.job",
                    job=record.job_id,
                    engine=record.request.engine,
                ) as span:
                    span.add("service.jobs")
                    if record.job_id in self._resumed:
                        span.add("service.resumed")
                    primary = self._claim(record)
                    if primary is not None:
                        record.deduped = True
                        record.deduped_from = primary.job_id
                        span.add("service.dedup")
                    try:
                        self._execute(record)
                    except ReproError as error:
                        span.add("service.errors")
                        record.error = wire.render_error(error)
                    except Exception as error:  # crash shield: a worker
                        # thread must survive any job, typed or not
                        span.add("service.errors")
                        record.error = {
                            "type": type(error).__name__,
                            "message": str(error),
                            "context": {},
                        }
        finally:
            # Terminal bookkeeping runs no matter how the job ended:
            # counter totals from the finished trace, the persisted
            # terminal record, and the key release unblocking waiters.
            records = tracer.finish()
            record.counters = dict(sorted(total_counters(records).items()))
            if record.result is None and record.error is None:
                record.error = wire.render_error(
                    ReproError("job ended without a result or a typed error")
                )
            self._set_state(
                record, "failed" if record.error is not None else "done"
            )
            self.store.save(record)
            self._release(record)
            self._graft(records)

    def _execute(self, record: JobRecord) -> None:
        """Run the chain under the request's budget and the shared cache."""
        request = record.request
        budget = Budget(**request.budget) if request.budget else None
        use_kernel = request.engine == "kernel"
        with caching(self.cache), governed(budget):
            if request.scenario is not None:
                _, spec = find_scenario(request.scenario)
                run = run_scenario(
                    spec, use_kernel=use_kernel, workers=request.workers
                )
                record.result = wire.render_result(
                    run.problems,
                    run.reached_fixed_point,
                    run.certified_rounds,
                    run.failures,
                )
            else:
                problem, operator, steps, policy = resolve_request(request)
                outcome = run_problem_chain(
                    problem,
                    operator=operator,
                    steps=steps,
                    policy=policy,
                    use_kernel=use_kernel,
                    workers=request.workers,
                )
                record.result = wire.render_result(
                    outcome.problems,
                    outcome.reached_fixed_point,
                    outcome.certified_rounds,
                    [],
                )

    def _graft(self, records: list[dict]) -> None:
        if self._master is None:
            return
        with self._master_lock:
            self._master.graft(records)


__all__ = [
    "StreamingTracer",
    "LockedOperatorCache",
    "resolve_request",
    "computation_key",
    "Orchestrator",
]
