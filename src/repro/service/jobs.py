"""Job records and the sealed on-disk job store.

A :class:`JobRecord` is the complete, JSON-safe state of one submitted
job: the parsed request, the renaming-invariant computation key it
dedups on, its lifecycle state (``queued -> running -> done | failed``),
the rendered result or structured error, the trace-counter totals of
its run, and the event log the streaming endpoint serves.

The :class:`JobStore` persists records through the same sealed
:class:`~repro.robustness.checkpointing.CheckpointStore` machinery the
chain runner checkpoints through: every save is an atomic, SHA-256
sealed write, and a corrupt record found on restart is evicted and
counted — the server starts clean rather than trusting damaged state.
Completed records round-trip byte-identically (property-tested in
``tests/test_service_store.py``), which is what lets a restarted server
re-serve a finished job's status document with the exact bytes the
original server produced.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.robustness.checkpointing import CheckpointStore
from repro.robustness.errors import InvalidJobRequest
from repro.service import wire
from repro.service.wire import JOB_STATES, JobRequest

#: Stage-name namespace of job records inside the checkpoint store.
JOB_STAGE_PREFIX = "job-"


def new_job_id() -> str:
    """A fresh opaque job identifier."""
    return uuid.uuid4().hex[:16]


@dataclass
class JobRecord:
    """The complete persistable state of one job."""

    job_id: str
    request: JobRequest
    key: str                       #: dedup key: operator+steps+policy+fingerprint
    state: str = "queued"          #: one of :data:`~repro.service.wire.JOB_STATES`
    deduped: bool = False          #: served by replaying an isomorphic run
    deduped_from: str | None = None
    result: dict | None = None     #: rendered result body (terminal ``done``)
    error: dict | None = None      #: structured error body (terminal ``failed``)
    counters: dict[str, int] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in ("done", "failed")


class JobStore:
    """A directory of sealed job records, namespaced ``job-<id>``."""

    def __init__(self, directory: str | Path) -> None:
        self.checkpoints = CheckpointStore(directory)
        self.corrupt_evictions = 0

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record`` (seal + temp file + rename)."""
        self.checkpoints.save(
            f"{JOB_STAGE_PREFIX}{record.job_id}", wire.encode_job(record)
        )

    def load(self, job_id: str) -> JobRecord | None:
        """One record by id, or ``None`` when absent or evicted-corrupt."""
        payload, corrupt = self.checkpoints.load_or_discard(
            f"{JOB_STAGE_PREFIX}{job_id}"
        )
        if corrupt is not None:
            self.corrupt_evictions += 1
        if payload is None:
            return None
        try:
            return wire.decode_job(payload)
        except InvalidJobRequest:
            self.corrupt_evictions += 1
            self.checkpoints.delete(f"{JOB_STAGE_PREFIX}{job_id}")
            return None

    def load_all(self) -> list[JobRecord]:
        """Every decodable record on disk, sorted by job id.

        Corrupt files — failed integrity seals and well-sealed payloads
        that do not decode as job records — are evicted and counted in
        :attr:`corrupt_evictions`, never raised: a damaged job file
        must cost one job, not the whole server.
        """
        records = []
        for stage in self.checkpoints.stages(prefix=JOB_STAGE_PREFIX):
            record = self.load(stage[len(JOB_STAGE_PREFIX):])
            if record is not None:
                records.append(record)
        return records

    def delete(self, job_id: str) -> None:
        """Remove one record if present."""
        self.checkpoints.delete(f"{JOB_STAGE_PREFIX}{job_id}")


__all__ = [
    "JOB_STAGE_PREFIX",
    "JOB_STATES",
    "new_job_id",
    "JobRecord",
    "JobStore",
]
